#!/usr/bin/env python3
"""Why not synchronize blocks through the inter-GPU path? (paper §3)

The paper dismisses adapting Stuart & Owens' message passing for
inter-block communication on one GPU: "the performance is projected to
be quite poor because data needs to be moved to the CPU host memory
first and then transferred back".  With two simulated devices on one
engine we can put a number on that projection: compare the cost of one
grid-wide barrier implemented

* on-device (GPU lock-free sync, Eq. 9),
* by kernel relaunch (CPU implicit sync, the baseline), and
* through the host as two GPUs exchanging halos (synchronize both,
  d2h + h2d both ways, relaunch both).

Usage::

    python examples/multi_gpu.py
"""


from repro.gpu.device import Device
from repro.gpu.host import Host
from repro.gpu.kernel import KernelSpec
from repro.harness.report import format_table
from repro.model.barrier_costs import lockfree_cost
from repro.model.calibration import default_timings
from repro.simcore import Engine

HALO_BYTES = 8 * 1024  # a modest halo exchange


def compute_kernel(ctx, data):
    yield from ctx.compute(500)


def measure_inter_gpu_barrier() -> int:
    """One host-mediated barrier between two devices, in ns."""
    engine = Engine()
    dev_a, dev_b = Device(engine=engine), Device(engine=engine)
    host_a, host_b = Host(dev_a), Host(dev_b)
    halo_a = dev_a.memory.alloc("halo", HALO_BYTES // 8)
    halo_b = dev_b.memory.alloc("halo", HALO_BYTES // 8)

    def program():
        # Warm state: one kernel in flight on each device.
        yield from host_a.launch(
            KernelSpec("ka0", compute_kernel, 4, 64, params=dict(data=halo_a))
        )
        yield from host_b.launch(
            KernelSpec("kb0", compute_kernel, 4, 64, params=dict(data=halo_b))
        )
        t0 = engine.now
        # The "barrier": drain both, exchange halos via the host, relaunch.
        yield from host_a.synchronize()
        yield from host_b.synchronize()
        data_a = yield from host_a.memcpy_d2h(halo_a)
        data_b = yield from host_b.memcpy_d2h(halo_b)
        yield from host_a.memcpy_h2d(halo_a, data_b)
        yield from host_b.memcpy_h2d(halo_b, data_a)
        yield from host_a.launch(
            KernelSpec("ka1", compute_kernel, 4, 64, params=dict(data=halo_a))
        )
        yield from host_b.launch(
            KernelSpec("kb1", compute_kernel, 4, 64, params=dict(data=halo_b))
        )
        yield from host_a.synchronize()
        yield from host_b.synchronize()
        return engine.now - t0

    process = engine.spawn(program(), "host")
    engine.run()
    return process.result


def main() -> None:
    t = default_timings()
    inter_gpu = measure_inter_gpu_barrier()
    rows = [
        ["GPU lock-free sync (on device)", f"{lockfree_cost(30, t) / 1e3:9.2f}"],
        ["CPU implicit sync (relaunch)", f"{t.cpu_implicit_barrier_ns / 1e3:9.2f}"],
        [
            f"inter-GPU via host ({HALO_BYTES // 1024} KB halos)",
            f"{inter_gpu / 1e3:9.2f}",
        ],
    ]
    print(
        format_table(
            ["barrier path", "cost (µs)"],
            rows,
            title="One grid-wide barrier, three ways (paper §3)",
        )
    )
    print(
        f"\nThe host-mediated path costs "
        f"{inter_gpu / lockfree_cost(30, t):.0f}x the on-device barrier — "
        "the paper's 'projected to be quite poor', quantified."
    )


if __name__ == "__main__":
    main()
