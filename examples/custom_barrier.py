#!/usr/bin/env python3
"""Build, verify and measure your own grid barrier (see
docs/tutorial_custom_barrier.md for the narrated version).

Implements a *ticket barrier* against the public strategy interface,
proves it correct on the paper's workloads, and compares its measured
cost with the bundled strategies.

Usage::

    python examples/custom_barrier.py
"""

from itertools import count
from typing import Generator

import numpy as np

from repro import BitonicSort, FFT, SmithWaterman, run
from repro.harness.autotune import probe_barrier_cost
from repro.harness.report import format_table
from repro.simcore.effects import WaitSpec
from repro.sync.base import SyncStrategy, register_strategy

_IDS = count()


class TicketBarrier(SyncStrategy):
    """Centralized ticket barrier: the last ticket-holder releases."""

    name = "gpu-ticket"
    mode = "device"

    def __init__(self) -> None:
        self._uid = next(_IDS)
        self._tickets = None
        self._epoch = None
        self._num_blocks = 0

    def prepare(self, device, num_blocks: int) -> None:
        self.validate_grid(device.config, num_blocks)
        self._num_blocks = num_blocks
        self._tickets = device.memory.alloc(
            f"tickets#{self._uid}", 1, dtype=np.int64
        )
        self._epoch = device.memory.alloc(
            f"epoch#{self._uid}", 1, dtype=np.int64
        )

    def barrier(self, ctx, round_idx: int) -> Generator:
        start = ctx.now
        goal = (round_idx + 1) * self._num_blocks
        epoch = round_idx + 1
        ticket = yield from ctx.atomic_add(self._tickets, 0, 1)
        if ticket == goal - 1:
            yield from ctx.gwrite(self._epoch, 0, epoch)
        else:
            yield from ctx.spin_until(
                self._epoch,
                lambda e=self._epoch, t=epoch: e.data[0] >= t,
                f"epoch {epoch}", spec=WaitSpec(epoch, lo=0),
            )
        yield from ctx.syncthreads()
        ctx.record("sync", start, round=round_idx, strategy=self.name)


def main() -> None:
    register_strategy("gpu-ticket", TicketBarrier)

    # -- 1. verify on real workloads ----------------------------------------
    print("verifying gpu-ticket on the paper's workloads...")
    for algo in (FFT(n=1024), SmithWaterman(64, 64), BitonicSort(n=512)):
        result = run(algo, "gpu-ticket", num_blocks=8, threads_per_block=64)
        assert result.verified and result.violations == 0
        print(f"  {algo.name:8s} ok ({result.rounds} rounds)")

    # -- 2. measure against the bundled strategies ---------------------------
    rows = []
    for strat in (
        "gpu-ticket",
        "gpu-simple",
        "gpu-sense-reversal",
        "gpu-tree-2",
        "gpu-dissemination",
        "gpu-lockfree",
    ):
        cost = probe_barrier_cost(strat, 30)
        rows.append((strat, cost))
    rows.sort(key=lambda r: r[1])
    print()
    print(
        format_table(
            ["barrier", "per-round cost (µs), 30 blocks"],
            [[name, f"{cost/1e3:.2f}"] for name, cost in rows],
            title="Your barrier vs the bundled ones",
        )
    )
    ticket = dict(rows)["gpu-ticket"]
    simple = dict(rows)["gpu-simple"]
    print(
        f"\nThe ticket barrier costs {(ticket - simple)/1e3:.2f} µs more "
        "than gpu-simple per round: the explicit release store (300 ns, "
        "partially hidden by round-to-round pipelining) — the overhead "
        "the paper's accumulating goalVal avoids (§5.1)."
    )


if __name__ == "__main__":
    main()
