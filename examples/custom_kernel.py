#!/usr/bin/env python3
"""Writing your own device program against the low-level GPU API.

The three bundled algorithms all go through
:func:`repro.harness.runner.run`, but the device model is a public API:
you can write any kernel as a generator over :class:`repro.gpu.BlockCtx`
and drop a barrier strategy's ``barrier()`` between your own phases.

This example implements an iterative Jacobi solver for a 1-D Poisson
problem (``u'' = f`` with zero boundaries).  Each sweep updates interior
points from the *previous* sweep's values, so a grid-wide barrier is
required between sweeps — structurally the same pattern as the paper's
three workloads, but not one of them.

Usage::

    python examples/custom_kernel.py
"""

import numpy as np

from repro import Device, Host, KernelSpec, get_strategy

N = 512  # grid points
SWEEPS = 300
NUM_BLOCKS = 16
THREADS = 64


def main() -> None:
    device = Device()
    host = Host(device)

    h = 1.0 / (N + 1)
    f = np.ones(N)  # constant forcing
    u = device.memory.alloc("u", N + 2)  # zero boundaries at [0] and [-1]
    u_new = device.memory.alloc("u_new", N + 2)

    strategy = get_strategy("gpu-lockfree")
    strategy.prepare(device, NUM_BLOCKS)

    chunk = -(-N // NUM_BLOCKS)  # ceil

    def jacobi(ctx):
        lo = 1 + ctx.block_id * chunk
        hi = min(lo + chunk, N + 1)
        src, dst = u, u_new
        for sweep in range(SWEEPS):
            def relax(src=src, dst=dst, lo=lo, hi=hi):
                dst.data[lo:hi] = 0.5 * (
                    src.data[lo - 1 : hi - 1]
                    + src.data[lo + 1 : hi + 1]
                    + h * h * f[lo - 1 : hi - 1]
                )

            # ~3 reads + 1 write per point; the cost model charges the
            # block for its slice.
            yield from ctx.compute(200 + 4 * (hi - lo), relax, sweep=sweep)
            yield from strategy.barrier(ctx, sweep)
            src, dst = dst, src

    spec = KernelSpec(
        name="jacobi",
        program=jacobi,
        grid_blocks=NUM_BLOCKS,
        block_threads=THREADS,
        shared_mem_per_block=strategy.shared_mem_request(device.config),
    )

    def host_program():
        yield from host.launch(spec)
        yield from host.synchronize()

    device.engine.spawn(host_program(), "host")
    total_ns = device.run()

    # Verify against the exact discrete solution (tridiagonal solve).
    result = (u if SWEEPS % 2 == 0 else u_new).data[1:-1]
    A = (
        np.diag(np.full(N, 2.0))
        + np.diag(np.full(N - 1, -1.0), 1)
        + np.diag(np.full(N - 1, -1.0), -1)
    )
    exact = np.linalg.solve(A, h * h * f)
    err = float(np.max(np.abs(result - exact)))

    print(f"Jacobi: {SWEEPS} sweeps x {NUM_BLOCKS} blocks on {N} points")
    print(f"simulated kernel time : {total_ns / 1e6:.3f} ms")
    print(f"max |u - exact|       : {err:.2e} (Jacobi converges slowly;")
    print("                         more sweeps → smaller error)")
    sync_spans = device.trace.total("sync") + device.trace.total("sync-overhead")
    print(f"sum of barrier spans  : {sync_spans / 1e6:.3f} ms across blocks")


if __name__ == "__main__":
    main()
