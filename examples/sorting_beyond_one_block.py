#!/usr/bin/env python3
"""Bitonic sort past the single-block limit (the paper's §3 motivation).

The CUDA SDK's bitonic sort uses one block so it can rely on
``__syncthreads()`` — capping it at 512 keys.  With an inter-block
barrier, the same network runs across the whole grid and sorts
arbitrarily large arrays; this example sorts 16 384 keys (32× the old
limit) under each barrier strategy and checks the result against
``numpy.sort``.

Usage::

    python examples/sorting_beyond_one_block.py [log2_n]
"""

import sys

from repro import BitonicSort, run
from repro.harness.report import format_table

SINGLE_BLOCK_LIMIT = 512  # CUDA SDK bitonic sort (paper §3)


def main() -> None:
    log2_n = int(sys.argv[1]) if len(sys.argv) > 1 else 14
    sort = BitonicSort(n=2**log2_n)
    num_blocks = 30

    print(
        f"Sorting {sort.n} keys — {sort.n // SINGLE_BLOCK_LIMIT}x the "
        f"single-block limit — in {sort.num_rounds()} network steps.\n"
    )

    rows = []
    for strategy in ("cpu-implicit", "gpu-simple", "gpu-tree-2", "gpu-lockfree"):
        result = run(sort, strategy, num_blocks=num_blocks)
        assert result.verified, strategy
        rows.append(
            [
                strategy,
                f"{result.total_ms:.3f}",
                str(result.kernel_launches),
                f"{result.rounds}",
            ]
        )
    print(
        format_table(
            ["strategy", "sort time (ms)", "kernel launches", "barrier rounds"],
            rows,
            title=f"Bitonic sort n={sort.n} ({num_blocks} blocks)",
        )
    )
    print(
        "\nNote the launches column: CPU synchronization relaunches the "
        "kernel for every one of the network's steps; the GPU barriers "
        "run the whole sort in a single launch."
    )


if __name__ == "__main__":
    main()
