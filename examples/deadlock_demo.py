#!/usr/bin/env python3
"""Why device barriers need a one-to-one block↔SM mapping (paper §5).

CUDA blocks are non-preemptive: once scheduled, a block holds its SM
until it finishes.  If a grid has more blocks than can be co-resident
and the resident ones spin at a device-side barrier, the extra blocks
never run — and the resident ones never stop spinning.  The paper's fix
is to cap the grid at one block per SM (by claiming all shared memory).

This demo shows all four outcomes on the simulator:

1. the library's guard rejects an unsafe grid up front
   (``OccupancyError``);
2. bypassing the guard produces a *detected* deadlock
   (``DeadlockError``), naming exactly who is stuck on what;
3. on a *display-attached* device (watchdog enabled, ``kill`` mode) the
   same mistake looks like it did to 2009 developers: the driver kills
   the launch, ``cudaGetLastError``-style state reports it, and the
   device keeps working;
4. the same kernel at the SM count runs fine.

Usage::

    python examples/deadlock_demo.py
"""

import dataclasses

import numpy as np

from repro import DeadlockError, MeanMicrobench, OccupancyError, get_preset, run
from repro.gpu.device import Device
from repro.gpu.host import Host
from repro.gpu.kernel import KernelSpec
from repro.simcore.effects import WaitSpec


def main() -> None:
    # --- 1. the guard ------------------------------------------------------
    micro = MeanMicrobench(rounds=5, num_blocks_hint=31)
    try:
        # Deliberately one block past the SM count — the demo exists to
        # show the occupancy guard refusing exactly this launch.
        run(micro, "gpu-lockfree", num_blocks=31)  # repro: noqa SC002
    except OccupancyError as exc:
        print(f"[1] guard refused the launch:\n    {exc}\n")

    # --- 2. bypassing the guard: a real deadlock --------------------------
    device = Device()
    host = Host(device)
    arrivals = device.memory.alloc("arrivals", 1, dtype=np.int64)
    n = device.config.num_sms + 1  # 31 blocks, 30 SMs

    def naive_barrier(ctx):
        yield from ctx.atomic_add(arrivals, 0, 1)
        yield from ctx.spin_until(
            arrivals, lambda: arrivals.data[0] >= n, "naive grid barrier", spec=WaitSpec(n, lo=0)
        )

    spec = KernelSpec(
        name="unsafe",
        program=naive_barrier,
        grid_blocks=n,
        block_threads=64,
        shared_mem_per_block=device.config.shared_mem_per_sm,
    )

    def host_program():
        yield from host.launch(spec)
        yield from host.synchronize()

    device.engine.spawn(host_program(), "host")
    try:
        device.run()
    except DeadlockError as exc:
        spinning = sum(1 for _n, r in exc.blocked if "naive" in r)
        waiting = sum(1 for _n, r in exc.blocked if "SM slot" in r)
        print(
            f"[2] bypassed guard → deadlock detected: {spinning} blocks "
            f"spinning at the barrier, {waiting} starved for an SM slot "
            f"(plus the host and kernel bookkeeping processes).\n"
        )

    # --- 3. display-attached device: the watchdog kills the launch --------
    cfg = dataclasses.replace(
        get_preset("gtx280"), watchdog_ns=2_000_000, watchdog_action="kill"
    )
    device3 = Device(cfg)
    host3 = Host(device3)
    arrivals3 = device3.memory.alloc("arrivals", 1, dtype=np.int64)

    def naive_barrier3(ctx):
        yield from ctx.atomic_add(arrivals3, 0, 1)
        yield from ctx.spin_until(
            arrivals3, lambda: arrivals3.data[0] >= n, "naive grid barrier", spec=WaitSpec(n, lo=0)
        )

    spec3 = KernelSpec(
        name="unsafe",
        program=naive_barrier3,
        grid_blocks=n,
        block_threads=64,
        shared_mem_per_block=cfg.shared_mem_per_sm,
    )

    def host_program3():
        yield from host3.launch(spec3)
        yield from host3.synchronize()

    device3.engine.spawn(host_program3(), "host")
    device3.run()
    print(
        f"[3] display-attached device: driver killed the launch after "
        f"{cfg.watchdog_ns / 1e6:.0f} ms; cudaGetLastError-style state says:"
        f"\n    {host3.get_last_error()!r}\n"
    )

    # --- 4. the safe configuration ----------------------------------------
    result = run(
        MeanMicrobench(rounds=5, num_blocks_hint=30), "gpu-lockfree", num_blocks=30
    )
    print(
        f"[4] same barrier at 30 blocks (= #SMs): completed in "
        f"{result.total_ms:.3f} ms, verified={result.verified}."
    )


if __name__ == "__main__":
    main()
