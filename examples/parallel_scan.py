#!/usr/bin/env python3
"""Prefix sum with every barrier — including the extension barriers.

The Hillis–Steele scan is not one of the paper's three workloads, but it
is the textbook kernel that *needs* a grid barrier (step ``d`` reads
elements other blocks wrote in step ``d-1``).  This example runs it
under the paper's barriers *and* the two classics this library adds
(sense-reversing, dissemination), then exports the comparison as CSV
and a Chrome-tracing timeline for the winner.

Usage::

    python examples/parallel_scan.py [log2_n]
"""

import sys

from repro import PrefixSum, run
from repro.harness.report import format_table
from repro.harness.traceview import write_chrome_trace

STRATEGIES = [
    "cpu-implicit",
    "gpu-simple",
    "gpu-sense-reversal",
    "gpu-tree-2",
    "gpu-dissemination",
    "gpu-lockfree",
]


def main() -> None:
    log2_n = int(sys.argv[1]) if len(sys.argv) > 1 else 13
    num_blocks = 30
    scan = PrefixSum(n=2**log2_n)

    rows = []
    for strategy in STRATEGIES:
        result = run(scan, strategy, num_blocks=num_blocks)
        assert result.verified, strategy
        rows.append((strategy, result.total_ns))

    rows.sort(key=lambda r: r[1])
    print(
        format_table(
            ["strategy", "scan time (ms)"],
            [[name, f"{ns / 1e6:.3f}"] for name, ns in rows],
            title=(
                f"Inclusive scan n={scan.n} "
                f"({scan.num_rounds()} steps, {num_blocks} blocks)"
            ),
        )
    )

    # CSV of the same comparison, for replotting.
    print("\nCSV:")
    print("strategy,total_ns")
    for name, ns in rows:
        print(f"{name},{ns}")

    # A Chrome-tracing timeline of the winner's execution.
    best = rows[0][0]
    result = run(scan, best, num_blocks=num_blocks, trace=True)
    path = write_chrome_trace(result.device.trace, "scan_trace.json")
    print(
        f"\nwrote {len(result.device.trace)} spans of the {best!r} run to "
        f"{path} — open in chrome://tracing or ui.perfetto.dev"
    )


if __name__ == "__main__":
    main()
