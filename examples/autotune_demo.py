#!/usr/bin/env python3
"""Strategy selection three ways: model, probe, and brute force.

For a workload/grid configuration, compare:

1. the **advisor** (pure Eq. 2–9 model, zero measurement);
2. the **auto-tuner** (probe each barrier for a few rounds, predict the
   rest);
3. **brute force** (run the full workload under every strategy).

All three should agree on the winner; the point is the cost: the model
is free, the probe costs microseconds of simulated time, brute force
costs the whole workload × strategies.

Usage::

    python examples/autotune_demo.py
"""

from repro import PrefixSum, run
from repro.harness.autotune import autotune
from repro.harness.report import format_table
from repro.model.advisor import recommend

NUM_BLOCKS = 30


def main() -> None:
    scan = PrefixSum(n=2**13)
    rounds = scan.num_rounds()

    # 1. the analytic advisor
    per_round = [
        max(scan.round_cost(r, b, NUM_BLOCKS) for b in range(NUM_BLOCKS))
        for r in range(rounds)
    ]
    advised = recommend(rounds, per_round, NUM_BLOCKS)

    # 2. the probing auto-tuner
    tuned = autotune(scan, NUM_BLOCKS)

    # 3. brute force
    measured = {
        name: run(scan, name, num_blocks=NUM_BLOCKS).total_ns
        for name, _ in tuned.ranking()
    }
    brute = min(measured, key=measured.get)

    rows = []
    for name, predicted in tuned.ranking():
        rows.append(
            [
                name,
                f"{dict(advised.ranking).get(name, float('nan'))/1e6:.3f}",
                f"{predicted/1e6:.3f}",
                f"{measured[name]/1e6:.3f}",
            ]
        )
    print(
        format_table(
            ["strategy", "advisor (ms)", "autotune (ms)", "measured (ms)"],
            rows,
            title=f"Prefix scan n={scan.n}, {NUM_BLOCKS} blocks, {rounds} rounds",
        )
    )
    print(
        f"\nadvisor picks {advised.strategy!r}, auto-tuner picks "
        f"{tuned.strategy!r}, brute force confirms {brute!r}"
    )
    assert advised.strategy == tuned.strategy == brute


if __name__ == "__main__":
    main()
