#!/usr/bin/env python3
"""Local sequence alignment with wavefront parallelism (paper §6.2).

Aligns two random DNA sequences with the affine-gap Smith-Waterman
algorithm.  Each anti-diagonal of the scoring matrix is computed in
parallel across blocks, with a grid-wide barrier between diagonals —
the workload where the paper measured a ~50 % synchronization share and
a 24 % end-to-end win for the lock-free barrier.

Also demonstrates the strategy *advisor* (the paper's future-work item):
given the workload's measured per-round computation time, the Eq. 2–9
models predict which barrier to use before running anything.

Usage::

    python examples/sequence_alignment.py [query_len] [subject_len]
"""

import sys

from repro import SmithWaterman, run
from repro.harness.phases import breakdown, compute_only
from repro.harness.report import format_table
from repro.model.advisor import recommend


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    m = int(sys.argv[2]) if len(sys.argv) > 2 else 256
    algo = SmithWaterman(n, m)
    num_blocks = 30

    # --- ask the advisor first -------------------------------------------
    per_round = [
        max(algo.round_cost(r, b, num_blocks) for b in range(num_blocks))
        for r in range(algo.num_rounds())
    ]
    rec = recommend(algo.num_rounds(), per_round, num_blocks)
    print(
        f"Advisor: ρ = {rec.rho:.2f} → predicted best strategy is "
        f"{rec.strategy!r} at {rec.predicted_ns / 1e6:.3f} ms\n"
    )

    # --- then measure ------------------------------------------------------
    null = compute_only(algo, num_blocks)
    rows = []
    for strategy in ("cpu-implicit", "gpu-simple", "gpu-tree-2", "gpu-lockfree"):
        result = run(algo, strategy, num_blocks=num_blocks)
        assert result.verified
        b = breakdown(result, null)
        rows.append(
            [
                strategy,
                f"{result.total_ms:.3f}",
                f"{b.compute_pct:.1f}%",
                f"{b.sync_pct:.1f}%",
                str(algo.best_score),
            ]
        )
    print(
        format_table(
            ["strategy", "fill time (ms)", "compute", "sync", "best score"],
            rows,
            title=(
                f"Smith-Waterman {n}x{m} "
                f"({algo.num_rounds()} anti-diagonals, {num_blocks} blocks)"
            ),
        )
    )
    best_measured = min(rows, key=lambda r: float(r[1]))[0]
    print(f"\nMeasured best: {best_measured!r}; advisor said {rec.strategy!r}.")

    # --- and the actual alignment (sequential trace-back, §6.2) -----------
    from repro.algorithms import traceback

    aln = traceback(algo)
    window = 60
    print(
        f"\nOptimal local alignment (score {aln.score}, "
        f"{100 * aln.identity:.0f}% identity, "
        f"query {aln.query_span}, subject {aln.subject_span}; "
        f"first {window} columns):"
    )
    for line in aln.pretty().splitlines():
        print(f"  {line[:window]}")


if __name__ == "__main__":
    main()
