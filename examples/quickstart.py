#!/usr/bin/env python3
"""Quickstart: run one workload under every barrier strategy.

Runs a 4096-point FFT (12 barrier-separated stages) on the simulated
GTX 280 under each synchronization strategy, verifies every result
against numpy.fft, and prints the paper's central comparison: the
device-side barriers — especially lock-free — beat relaunch-based CPU
synchronization.

Usage::

    python examples/quickstart.py
"""

from repro import FFT, run
from repro.harness.report import format_table

STRATEGIES = [
    "cpu-explicit",
    "cpu-implicit",
    "gpu-simple",
    "gpu-tree-2",
    "gpu-tree-3",
    "gpu-lockfree",
]


def main() -> None:
    fft = FFT(n=2**12)
    num_blocks = 30  # one block per SM — the co-residency limit

    rows = []
    baseline = None
    for strategy in STRATEGIES:
        result = run(fft, strategy, num_blocks=num_blocks)
        assert result.verified, strategy
        if strategy == "cpu-implicit":
            baseline = result.total_ns
        rows.append((strategy, result))

    table = []
    for strategy, result in rows:
        vs_base = (
            f"{100.0 * (baseline - result.total_ns) / baseline:+.1f}%"
            if baseline
            else "-"
        )
        table.append(
            [
                strategy,
                f"{result.total_ms:.3f}",
                str(result.kernel_launches),
                str(result.atomic_ops),
                vs_base,
            ]
        )
    print(
        format_table(
            ["strategy", "kernel time (ms)", "launches", "atomics", "vs implicit"],
            table,
            title=f"FFT n={fft.n} ({fft.num_rounds()} stages, {num_blocks} blocks)",
        )
    )
    print(
        "\nEvery run verified against numpy.fft.fft — the barriers are"
        " load-bearing, not decorative."
    )


if __name__ == "__main__":
    main()
