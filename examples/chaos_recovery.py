#!/usr/bin/env python3
"""Surviving a hung block: watchdog → retry → graceful degradation.

A CUDA block that dies before reaching a device-side spin barrier hangs
the whole grid forever (paper §5: blocks are non-preemptive and the
barrier has no timeout).  This demo injects exactly that fault and
walks the resilient runtime's full escalation ladder:

1. a seeded :class:`repro.faults.FaultPlan` hangs one block before the
   barrier of round 1 — *persistently*, so relaunching cannot help;
2. a single guarded run fails fast and *typed*: the barrier watchdog
   notices that no process can ever make progress again, kills the
   kernel, and raises ``BarrierTimeoutError`` naming the injected hang
   (instead of the terminal ``DeadlockError`` an unguarded run dies of);
3. ``repro.run(..., retry=..., degrade=...)`` — the resilient path of
   the unified facade — retries with virtual-time backoff; the hang
   re-fires every attempt, so it then *degrades*: it swaps the device
   barrier for the host-side ``cpu-implicit`` barrier, which a hung
   barrier round structurally cannot deadlock (the kernel boundary
   itself synchronizes, paper §4.1), and finishes verified.

Usage::

    python examples/chaos_recovery.py
"""

from repro import DegradePolicy, RetryPolicy, run
from repro.errors import BarrierTimeoutError
from repro.faults import FaultPlan, FaultSpec
from repro.sanitize import SkewedMicrobench


def micro() -> SkewedMicrobench:
    return SkewedMicrobench(rounds=4, num_blocks_hint=8)


def main() -> None:
    plan = FaultPlan([FaultSpec("hang", block=3, round=1)])
    print(f"[1] fault plan: {', '.join(plan.descriptions)}\n")

    # --- 2. one guarded attempt: typed, recoverable failure ---------------
    try:
        run(micro(), "gpu-lockfree", num_blocks=8, faults=plan)
    except BarrierTimeoutError as exc:
        stuck = [name for name, _ in exc.stuck if "/b" in name]
        hung = [r for _, r in exc.stuck if "injected hang" in r]
        print(
            f"[2] watchdog killed the stalled kernel at t={exc.fired_at_ns} "
            f"ns:\n    {len(stuck)} blocks parked; root cause reported as\n"
            f"    {hung[0]!r}\n"
        )

    # --- 3. the full runtime: retry, then degrade --------------------------
    plan = FaultPlan([FaultSpec("hang", block=3, round=1)])
    result = run(
        micro(),
        "gpu-lockfree",
        num_blocks=8,
        faults=plan,
        retry=RetryPolicy(),
        degrade=DegradePolicy(),
    )
    for event in result.recovery:
        print(f"[3] attempt {event.attempt}: {event.kind:8s} {event.detail[:68]}")
    print(
        f"\n    survived: verified={result.verified} on "
        f"{result.strategy!r} (degraded from {result.degraded_from!r}), "
        f"{result.attempts} attempts, {result.faults_fired} faults fired,\n"
        f"    {result.total_ms:.3f} ms total including "
        f"{result.retry_overhead_ns / 1e6:.3f} ms of retry overhead."
    )


if __name__ == "__main__":
    main()
