#!/usr/bin/env python3
"""The paper's Figures 2 and 4, transliterated line by line.

Figure 2 shows the two CPU synchronization patterns as CUDA host code;
Figure 4 shows the GPU-synchronized version.  This example writes all
three against the CUDA-flavored front-end (:mod:`repro.cudaapi`) so the
correspondence with the paper is direct, then prints the timing triangle
the whole paper is about:

    explicit  >  implicit  >  GPU sync        (Eqs. 3 > 4 > 5)

Usage::

    python examples/paper_figures.py
"""

import numpy as np

from repro.cudaapi import CudaSession
from repro.sync import get_strategy

NUM_ITERATIONS = 50
GRID, BLOCK = 30, 256
N = GRID * BLOCK


def kernel_func(ctx, data):
    """One computation step: data[i] = (data[i] + 1) / 2 per thread."""
    lo = ctx.block_id * BLOCK
    hi = lo + BLOCK

    def work():
        data.data[lo:hi] = (data.data[lo:hi] + 1.0) / 2.0

    yield from ctx.compute(500, work)


def figure_2a_cpu_explicit() -> float:
    """Fig. 2(a): __global__ kernel_func(); for(...){ kernel_func<<<...>>>();
    cudaThreadSynchronize(); }"""
    cuda = CudaSession()
    d_data = cuda.cuda_malloc("data", N)
    cuda.cuda_memcpy_h2d(d_data, np.zeros(N))
    t0 = cuda.now_ns
    for _i in range(NUM_ITERATIONS):
        cuda.launch_kernel(kernel_func, GRID, BLOCK, args=dict(data=d_data))
        cuda.cuda_thread_synchronize()  # the explicit barrier
    return (cuda.now_ns - t0) / 1e6


def figure_2b_cpu_implicit() -> float:
    """Fig. 2(b): same loop, no cudaThreadSynchronize inside."""
    cuda = CudaSession()
    d_data = cuda.cuda_malloc("data", N)
    cuda.cuda_memcpy_h2d(d_data, np.zeros(N))
    t0 = cuda.now_ns
    for _i in range(NUM_ITERATIONS):
        cuda.launch_kernel(kernel_func, GRID, BLOCK, args=dict(data=d_data))
    cuda.cuda_thread_synchronize()  # only at the very end
    return (cuda.now_ns - t0) / 1e6


def figure_4_gpu_sync(strategy_name: str = "gpu-lockfree") -> float:
    """Fig. 4: __device__ device_func(); one kernel, __gpu_sync() inside."""
    cuda = CudaSession()
    d_data = cuda.cuda_malloc("data", N)
    cuda.cuda_memcpy_h2d(d_data, np.zeros(N))
    strategy = get_strategy(strategy_name)
    strategy.prepare(cuda.device, GRID)

    def kernel_func1(ctx, data):
        for i in range(NUM_ITERATIONS):
            yield from kernel_func(ctx, data)  # device_func(...)
            yield from strategy.barrier(ctx, i)  # __gpu_sync(...)

    t0 = cuda.now_ns
    cuda.launch_kernel(
        kernel_func1,
        GRID,
        BLOCK,
        shared_mem=strategy.shared_mem_request(cuda.device.config),
        args=dict(data=d_data),
    )
    cuda.cuda_thread_synchronize()
    return (cuda.now_ns - t0) / 1e6


def main() -> None:
    explicit = figure_2a_cpu_explicit()
    implicit = figure_2b_cpu_implicit()
    gpu = figure_4_gpu_sync()
    print(f"{NUM_ITERATIONS} iterations of kernel_func on {GRID} blocks:\n")
    print(f"  Fig. 2(a)  CPU explicit sync : {explicit:8.3f} ms   (Eq. 3)")
    print(f"  Fig. 2(b)  CPU implicit sync : {implicit:8.3f} ms   (Eq. 4)")
    print(f"  Fig. 4     GPU lock-free sync: {gpu:8.3f} ms   (Eq. 5)")
    assert explicit > implicit > gpu
    print(
        f"\nGPU sync beats the implicit baseline by "
        f"{100 * (implicit - gpu) / implicit:.1f}% on this kernel."
    )


if __name__ == "__main__":
    main()
