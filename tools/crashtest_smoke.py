#!/usr/bin/env python
"""CI smoke: lease takeover across hosts, proven on a live fleet.

The crash matrix (``repro crashtest``, docs/crashtest.md) proves every
registered crash point recovers with a staged victim/survivor pair per
scenario.  This smoke is the unstaged version of its central claim: two
workers on *different simulated hosts* race for one job, the host that
wins the lease is SIGKILLed mid-sweep, and the surviving host must
finish the work — byte-identically.

1. submit one multi-second fig11 sweep to a fresh service directory;
2. start two workers against it with distinct ``--host-label`` values
   (``hostA``/``hostB``) — their owner strings are
   ``worker-<pid>@<host>``, so the job row names the leaseholder;
3. wait until the job is leased, parse the owner, **SIGKILL that
   worker** (the pid is in the owner string by design);
4. drive the reaper path (``requeue_expired``) until the lease expires
   and the job is requeued, then wait for the survivor to finish it;
5. assert the completion is stamped by the *other* host, exactly once
   (schema-2 ``completions`` == 1), re-attempted (``attempts`` >= 2),
   and the stored envelope is byte-identical to an undisturbed serial
   run computed in this process.

Exit 0 on success, 1 with a diagnostic on any violated contract.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

from repro.service.jobs import JobTable, job_id_for  # noqa: E402
from repro.service.runners import execute_spec, validate_spec  # noqa: E402

SPEC = {"experiment": "fig11", "params": {"rounds": 20}}
LEASE_S = 2.0
HOSTS = ("hostA", "hostB")


def start_worker(service_dir: Path, host: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.service.worker_main",
            "--service-dir", str(service_dir),
            "--lease-s", str(LEASE_S),
            "--retry-budget", "3",
            "--poll-s", "0.05",
            "--once",
            "--once-timeout-s", "60",
            "--host-label", host,
        ],
        env=env,
        cwd=str(service_dir),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    raise SystemExit(1)


def main() -> int:
    spec = validate_spec(SPEC)
    job_id = job_id_for(spec)
    with tempfile.TemporaryDirectory(prefix="crashtest-smoke-") as tmp:
        service_dir = Path(tmp)
        print("computing undisturbed reference envelope ...")
        reference = execute_spec(
            spec, journal_dir=service_dir / "reference-journal", jobs=1
        )
        table = JobTable(
            service_dir / "jobs.sqlite3", lease_s=LEASE_S, retry_budget=3
        )
        table.submit(spec)
        workers = {host: start_worker(service_dir, host) for host in HOSTS}
        try:
            # -- who won the lease? ------------------------------------
            owner = ""
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                job = table.get(job_id)
                if job and job["state"] == "leased":
                    owner = str(job["lease_owner"])
                    break
                time.sleep(0.05)
            if "@" not in owner:
                fail(f"job was never leased (owner {owner!r})")
            pid_part, _, victim_host = owner.partition("@")
            victim_pid = int(pid_part.removeprefix("worker-"))
            survivor_host = next(h for h in HOSTS if h != victim_host)
            if workers[victim_host].pid != victim_pid:
                fail(
                    f"owner {owner!r} names pid {victim_pid}, but "
                    f"{victim_host}'s worker is {workers[victim_host].pid}"
                )
            # Let the sweep journal real progress before the crash.
            time.sleep(1.0)
            print(f"killing leaseholder {owner!r} (SIGKILL) ...")
            os.kill(victim_pid, signal.SIGKILL)
            workers[victim_host].wait()

            # -- recovery: reap the lease, let the survivor take over --
            job = None
            deadline = time.monotonic() + 90.0
            while time.monotonic() < deadline:
                job = table.get(job_id)
                if job and job["state"] in ("done", "failed"):
                    break
                table.requeue_expired()
                time.sleep(0.1)
            if job is None or job["state"] != "done":
                state = job["state"] if job else "missing"
                fail(f"job never completed after takeover (state {state!r})")
        finally:
            for proc in workers.values():
                if proc.poll() is None:
                    proc.kill()
                    proc.wait()

        completed_by = str(job["completed_by"] or "")
        if not completed_by.endswith(f"@{survivor_host}"):
            fail(
                f"no takeover: completion stamped {completed_by!r}, "
                f"expected the surviving host {survivor_host!r}"
            )
        if job["completions"] != 1:
            fail(f"completions={job['completions']} (want exactly 1)")
        if job["attempts"] < 2:
            fail(f"attempts={job['attempts']} (want >= 2: a real requeue)")
        if job["result"] != reference:
            fail(
                "recovered envelope is not byte-identical to the "
                f"undisturbed run ({len(str(job['result'] or ''))} vs "
                f"{len(reference)} bytes)"
            )
        print(
            f"OK: {owner!r} killed mid-sweep; {completed_by!r} completed "
            f"attempt {job['attempts']} byte-identically "
            f"({len(reference)} bytes)"
        )
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
