#!/usr/bin/env python
"""CI interruption smoke: interrupt a journaled sweep, resume, diff.

Drives the resumed-equals-uninterrupted invariant end to end
(docs/resilience.md):

1. run the reference Fig. 11 sweep uninterrupted;
2. run it again journaled, with a progress tripwire that raises SIGTERM
   once half the cells are done — deterministic, unlike an external
   ``kill`` racing the sweep — and catch the resulting
   :class:`~repro.errors.InterruptedSweepError`;
3. resume from the run-id the error carries and byte-compare the
   resumed sweep's JSON against the reference;
4. replay the same journal through the CLI (``--resume <run-id>``) and
   require a clean exit.

Exit 0 when every step holds, 1 with a diagnostic otherwise.
"""

import signal
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.errors import InterruptedSweepError
from repro.harness import experiments
from repro.parallel import Executor

ROUNDS = 50
JOBS = 2


def fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def main() -> int:
    reference = experiments.fig11(rounds=ROUNDS)
    total_cells = len(reference.blocks) * (len(reference.totals) + 1)

    with tempfile.TemporaryDirectory(prefix="resume-smoke-") as tmp:
        journal_dir = Path(tmp)

        def tripwire(done: int, total: int, cached: bool) -> None:
            if done == total // 2:
                signal.raise_signal(signal.SIGTERM)

        tripped = Executor(
            jobs=JOBS, journal_dir=journal_dir, progress=tripwire
        )
        try:
            experiments.fig11(rounds=ROUNDS, executor=tripped)
        except InterruptedSweepError as exc:
            interrupted = exc
        else:
            return fail("SIGTERM tripwire never interrupted the sweep")

        print(
            f"interrupted at {interrupted.done}/{interrupted.total} cells "
            f"(run {interrupted.run_id}); journal: "
            f"{interrupted.journal_path}"
        )
        if interrupted.done >= interrupted.total:
            return fail("interrupt fired after the sweep already finished")

        resumed_ex = Executor(jobs=JOBS, journal_dir=journal_dir)
        resumed = experiments.fig11(
            rounds=ROUNDS, executor=resumed_ex, resume=interrupted.run_id
        )
        if resumed.to_json() != reference.to_json():
            return fail(
                "resumed sweep is not byte-identical to the "
                "uninterrupted reference"
            )
        replayed = resumed_ex.last_batch.replayed
        if replayed < interrupted.done:
            return fail(
                f"resume replayed only {replayed} of the "
                f"{interrupted.done} journaled cells"
            )
        print(
            f"resume replayed {replayed} journaled cells, executed the "
            f"remaining {total_cells - replayed}; JSON byte-identical "
            f"({len(reference.to_json())} bytes)"
        )

        # The CLI spelling of the same resume must replay cleanly too.
        cli = subprocess.run(
            [
                sys.executable, "-m", "repro.harness", "fig11",
                "--rounds", str(ROUNDS), "--jobs", str(JOBS),
                "--journal-dir", str(journal_dir),
                "--resume", interrupted.run_id,
            ],
            capture_output=True,
            text=True,
        )
        if cli.returncode != 0:
            print(cli.stdout)
            print(cli.stderr, file=sys.stderr)
            return fail(
                f"CLI --resume exited {cli.returncode} instead of 0"
            )
        print("CLI --resume replayed the journal and exited 0")

    print("interrupt/resume smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
