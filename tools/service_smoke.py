#!/usr/bin/env python
"""CI smoke: the sweep service survives the chaos menu, byte-identically.

The scripted incident (docs/service.md):

1. start ``repro serve`` with one worker and a short lease;
2. submit a fig11 sweep and wait until the worker has journaled real
   progress (cells in the write-ahead journal, job ``leased``);
3. **SIGKILL the worker mid-sweep** — no drain, no cleanup, the
   worst-case crash;
4. **SIGTERM the whole service** and start a fresh instance on the same
   service directory — the job table and the journal are the only
   surviving state;
5. wait for the job to finish, then assert:
   * the job was re-attempted (the lease expired and the reaper
     requeued it — ``attempts >= 2``);
   * the served result envelope is **byte-identical** to an
     uninterrupted serial run computed in this process.

Exit 0 on success, 1 with a diagnostic on any violated contract.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

from repro.errors import ServiceError  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402

ROUNDS = 30  # ~5 s serial: long enough to kill mid-run, short for CI
LEASE_S = 3.0


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def start_service(service_dir: Path, port: int) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.harness", "serve",
            "--port", str(port),
            "--workers", "1",
            "--lease-s", str(LEASE_S),
            "--retry-budget", "3",
            "--service-dir", str(service_dir),
        ],
        env=env,
        cwd=str(REPO),
    )
    client = ServiceClient(f"http://127.0.0.1:{port}", timeout_s=5.0)
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        try:
            if client.healthz():
                return proc
        except ServiceError:
            pass
        if proc.poll() is not None:
            raise SystemExit(f"service died at startup (rc={proc.returncode})")
        time.sleep(0.2)
    proc.kill()
    raise SystemExit("service never became healthy")


def wait_for_journal_progress(service_dir: Path, min_entries: int = 5) -> None:
    """Block until some worker has journaled ``min_entries`` completions."""
    deadline = time.monotonic() + 60.0
    journal_root = service_dir / "journal"
    while time.monotonic() < deadline:
        for path in journal_root.glob("*/journal.jsonl"):
            try:
                lines = path.read_text().count("\n")
            except OSError:
                continue
            if lines > min_entries:  # header + min_entries completions
                return
        time.sleep(0.1)
    raise SystemExit("worker never journaled any progress")


def leased_worker_pid(client: ServiceClient, job_id: str) -> int:
    """The pid baked into the lease owner (``worker-<pid>@host``)."""
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        status = client.status(job_id)
        owner = status.get("lease_owner")
        if status["state"] == "leased" and owner:
            return int(owner.split("@", 1)[0].rsplit("-", 1)[1])
        time.sleep(0.1)
    raise SystemExit("job was never leased")


def main() -> int:
    service_dir = Path(tempfile.mkdtemp(prefix="repro-service-smoke-"))
    port = free_port()
    print(f"[smoke] service dir {service_dir}, port {port}")

    print(f"[smoke] serial reference run (fig11, rounds={ROUNDS})...")
    from repro.harness import experiments

    reference = experiments.fig11(rounds=ROUNDS).to_json()

    proc = start_service(service_dir, port)
    client = ServiceClient(f"http://127.0.0.1:{port}", timeout_s=5.0)
    try:
        job = client.submit(
            {"experiment": "fig11", "params": {"rounds": ROUNDS}}
        )
        job_id = job["id"]
        print(f"[smoke] submitted job {job_id}")

        pid = leased_worker_pid(client, job_id)
        wait_for_journal_progress(service_dir)
        print(f"[smoke] SIGKILL worker {pid} mid-sweep")
        os.kill(pid, signal.SIGKILL)

        print("[smoke] SIGTERM the whole service (restart test)")
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=60)
    except BaseException:
        proc.kill()
        raise

    port = free_port()
    print(f"[smoke] restarting service on port {port}")
    proc = start_service(service_dir, port)
    client = ServiceClient(f"http://127.0.0.1:{port}", timeout_s=5.0)
    try:
        final = client.wait(job_id, timeout_s=180.0, poll_s=0.5)
        attempts = final["attempts"]
        print(f"[smoke] job {job_id}: {final['state']} after "
              f"{attempts} attempt(s)")
        if final["state"] != "done":
            print(f"[smoke] FAIL: job ended {final['state']!r}", file=sys.stderr)
            return 1
        if attempts < 2:
            print(
                "[smoke] FAIL: job was never requeued "
                f"(attempts={attempts}); the SIGKILL was not survived by "
                "the lease protocol",
                file=sys.stderr,
            )
            return 1
        served = client.result_text(job_id)
        if served != reference:
            print(
                "[smoke] FAIL: served envelope differs from the "
                "uninterrupted serial run",
                file=sys.stderr,
            )
            return 1
        print("[smoke] OK: requeued after SIGKILL + restart, envelope "
              "byte-identical to serial")
        return 0
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()


if __name__ == "__main__":
    raise SystemExit(main())
