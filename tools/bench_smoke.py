"""CI bench smoke: the fast engine must never be slower than reference.

Races ``engine_mode="fast"`` against the reference oracle on every
canonical engine workload (:data:`repro.harness.perf.ENGINE_WORKLOADS`)
and exits non-zero when any speedup falls below the noise band — the
``engine-equiv`` job's tripwire for "the fast path quietly became a slow
path".  ``compare_modes`` itself refuses to report if the two engines
disagree on event count or final virtual clock, so a correctness
regression fails this script too.

The floor is 0.9x, not 1.0x: shared CI boxes jitter by more than a few
percent, and the regression this guards against is a structural slowdown
(an accidental O(n) scan, a dropped fast path), not a 5% wobble.  The
headline speedups themselves (>= 10x on the spin wall) are asserted by
``benchmarks/bench_engine.py`` and recorded in
``benchmarks/out/BENCH_engine.json``.
"""

from __future__ import annotations

import sys

from repro.errors import ExperimentError
from repro.harness.perf import ENGINE_WORKLOADS, compare_modes

#: minimum acceptable fast/reference speedup on any workload.
NOISE_FLOOR = 0.9


def main() -> int:
    failures = []
    for name, build in ENGINE_WORKLOADS.items():
        try:
            result = compare_modes(build)
        except ExperimentError as exc:
            print(f"{name}: DIVERGED - {exc}", file=sys.stderr)
            failures.append(name)
            continue
        ref = result["reference"]
        fast = result["fast"]
        speedup = result["speedup"]
        print(
            f"{name:14s} events={ref['events']:>8d}  "
            f"ref {ref['events_per_sec']:>12,.0f} ev/s  "
            f"fast {fast['events_per_sec']:>12,.0f} ev/s  "
            f"speedup {speedup:5.2f}x"
        )
        if speedup < NOISE_FLOOR:
            print(
                f"{name}: fast engine speedup {speedup:.2f}x is below the "
                f"{NOISE_FLOOR}x noise floor",
                file=sys.stderr,
            )
            failures.append(name)
    if failures:
        print(f"bench smoke FAILED: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("bench smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
