"""CI preset-matrix smoke: every preset, both engines, identical sweeps.

Runs a tiny Fig. 11 sweep on every registered device preset under the
fast engine and again under the reference oracle, and fails if the two
serialized sweeps differ by a single byte.  This is the cross-product
guard the per-preset test files can't give: a preset whose topology
costs (interconnect crossings, cooperative co-residency, hierarchical
arrivals) take a code path the fast engine indexes differently shows up
here as a byte diff, before it shows up as a wrong figure.

Grid sizes are small (every preset co-resides 4 blocks) and the strategy
list covers each barrier family: host, atomic-counter, tree, lock-free,
and the hierarchical cluster barrier — which must also degenerate
correctly on flat single-domain presets.
"""

from __future__ import annotations

import sys

from repro.gpu.presets import get_preset, preset_names
from repro.harness import experiments
from repro.simcore.fastpath import use_engine_mode

#: the tightest co-residency limit in the registry is fermi_class (15),
#: and gpu-lockfree needs block_threads >= num_blocks (micro uses 256).
BLOCKS = [2, 4]
ROUNDS = 3

STRATEGIES = (
    "cpu-implicit",
    "gpu-simple",
    "gpu-tree-2",
    "gpu-lockfree",
    "gpu-cluster-tree",
)


def sweep_json(preset: str, mode: str) -> str:
    cfg = get_preset(preset)
    with use_engine_mode(mode):
        sweep = experiments.fig11(
            config=cfg, rounds=ROUNDS, blocks=BLOCKS, strategies=STRATEGIES
        )
    return sweep.to_json()


def main() -> int:
    failures = []
    for preset in preset_names():
        fast = sweep_json(preset, "fast")
        reference = sweep_json(preset, "reference")
        if fast == reference:
            print(f"{preset:20s} OK ({len(fast)} bytes, byte-identical)")
        else:
            print(
                f"{preset}: DIVERGED - fast and reference engines "
                "serialize different sweeps",
                file=sys.stderr,
            )
            failures.append(preset)
    if failures:
        print(
            f"preset matrix smoke FAILED: {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    print(f"preset matrix smoke OK ({len(preset_names())} presets)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
