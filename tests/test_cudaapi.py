"""Tests for the CUDA-flavored front-end."""

import numpy as np

from repro.cudaapi import CudaSession
from repro.model.kernel_time import cpu_explicit_time, cpu_implicit_time


def scale_kernel(ctx, data, factor):
    lo = ctx.block_id * (len(data) // ctx.num_blocks)
    hi = lo + len(data) // ctx.num_blocks

    def work():
        data.data[lo:hi] *= factor

    yield from ctx.compute(500, work)


class TestMemory:
    def test_malloc_memcpy_roundtrip(self):
        cuda = CudaSession()
        d = cuda.cuda_malloc("x", 64)
        host_data = np.arange(64.0)
        cuda.cuda_memcpy_h2d(d, host_data)
        back = cuda.cuda_memcpy_d2h(d)
        assert np.array_equal(back, host_data)
        assert cuda.now_ns > 0  # transfers took simulated time

    def test_free(self):
        cuda = CudaSession()
        d = cuda.cuda_malloc("x", 8)
        cuda.cuda_free(d)
        assert "x" not in cuda.device.memory


class TestKernels:
    def test_launch_is_asynchronous(self):
        cuda = CudaSession()
        d = cuda.cuda_malloc("x", 64, np.float64)
        cuda.cuda_memcpy_h2d(d, np.ones(64))
        before = cuda.now_ns
        handle = cuda.launch_kernel(
            scale_kernel, 4, 64, args=dict(data=d, factor=2.0)
        )
        launched_at = cuda.now_ns
        assert not handle.done  # the call returned mid-kernel
        cuda.cuda_thread_synchronize()
        assert handle.done
        assert cuda.now_ns > launched_at > before
        assert np.allclose(d.data, 2.0)

    def test_fig2b_implicit_pipeline_timing(self):
        """Back-to-back launches pipeline, as in paper Fig. 2(b)/Eq. 4."""
        cuda = CudaSession()
        d = cuda.cuda_malloc("x", 64)
        cuda.cuda_memcpy_h2d(d, np.ones(64))
        t0 = cuda.now_ns
        for _ in range(5):
            cuda.launch_kernel(scale_kernel, 4, 64, args=dict(data=d, factor=1.0))
        cuda.cuda_thread_synchronize()
        elapsed = cuda.now_ns - t0
        assert elapsed == cpu_implicit_time(5, 500, cuda.device.config.timings)

    def test_fig2a_explicit_timing(self):
        """Synchronize between launches: every launch exposed (Eq. 3)."""
        cuda = CudaSession()
        d = cuda.cuda_malloc("x", 64)
        cuda.cuda_memcpy_h2d(d, np.ones(64))
        t0 = cuda.now_ns
        for _ in range(5):
            cuda.launch_kernel(scale_kernel, 4, 64, args=dict(data=d, factor=1.0))
            cuda.cuda_thread_synchronize()
        elapsed = cuda.now_ns - t0
        assert elapsed == cpu_explicit_time(5, 500, cuda.device.config.timings)


class TestStreamsAndEvents:
    def test_event_timing(self):
        cuda = CudaSession()
        d = cuda.cuda_malloc("x", 64)
        start = cuda.cuda_event_create("start")
        stop = cuda.cuda_event_create("stop")
        cuda.cuda_event_record(start)
        cuda.launch_kernel(scale_kernel, 2, 32, args=dict(data=d, factor=3.0))
        cuda.cuda_event_record(stop)
        cuda.cuda_event_synchronize(stop)
        ms = cuda.cuda_event_elapsed_time(start, stop)
        assert ms > 0

    def test_stream_create_and_synchronize(self):
        cuda = CudaSession()
        d = cuda.cuda_malloc("x", 64)
        s = cuda.cuda_stream_create("s1")
        cuda.launch_kernel(
            scale_kernel, 2, 32, args=dict(data=d, factor=1.0), stream=s
        )
        cuda.cuda_stream_synchronize(s)
        assert cuda.host.launches[-1].done


class TestGridSyncThroughCudaApi:
    def test_device_barrier_in_user_kernel(self):
        """A user writes a persistent kernel with a grid barrier using
        the strategy API, launched through the CUDA façade."""
        from repro.sync import get_strategy

        cuda = CudaSession()
        flags = cuda.cuda_malloc("flags", 8, np.int64)
        strategy = get_strategy("gpu-lockfree")
        strategy.prepare(cuda.device, 8)
        order = []

        def persistent(ctx):
            for phase in range(3):
                yield from ctx.compute(
                    100, lambda p=phase: order.append((p, ctx.block_id))
                )
                yield from strategy.barrier(ctx, phase)

        cuda.launch_kernel(
            persistent,
            8,
            64,
            shared_mem=strategy.shared_mem_request(cuda.device.config),
        )
        cuda.cuda_thread_synchronize()
        phases = [p for p, _b in order]
        assert phases == sorted(phases)  # barrier kept phases ordered
        assert len(order) == 24
