"""End-to-end tests for the HTTP app, the worker loop, and recovery.

The app runs with ``workers=0`` (no subprocesses) and the tests drive
:class:`~repro.service.worker.Worker` inline — hermetic, fast, and the
crash paths are exercised at the protocol level (lease manipulation)
rather than by actually killing processes; the CI service-smoke job
covers the real-SIGKILL variant.
"""

import json

import pytest

from repro.errors import ServiceError
from repro.serialization import parse_job_failure, parse_result
from repro.service import JobTable, ServiceApp, ServiceClient, Worker

FIG11 = {"experiment": "fig11", "params": {"rounds": 2}}


@pytest.fixture
def app(tmp_path):
    app = ServiceApp(
        tmp_path / "svc",
        port=0,
        workers=0,
        lease_s=30.0,
        max_queued=2,
        reap_interval_s=3600.0,  # reaping is driven explicitly in tests
    )
    app.start()
    yield app
    if not app.draining:
        app.drain(grace_s=1.0)


@pytest.fixture
def client(app):
    return ServiceClient(app.url)


def inline_worker(app, **kwargs):
    return Worker(app.table, service_dir=app.service_dir, **kwargs)


# -- wire protocol ----------------------------------------------------------


def test_submit_poll_execute_fetch(app, client):
    job_id = client.submit(FIG11)["id"]
    status = client.status(job_id)
    assert status["state"] == "queued" and status["spec"] == FIG11

    assert inline_worker(app).run_once()
    final = client.wait(job_id, timeout_s=30)
    assert final["state"] == "done"

    from repro.harness import experiments

    text = client.result_text(job_id)
    assert text == experiments.fig11(rounds=2).to_json()


def test_resubmission_dedups_over_http(app, client):
    body = json.dumps(FIG11).encode("utf-8")
    status, first = client._request("POST", "/jobs", body)
    assert status == 201  # created
    status, again = client._request("POST", "/jobs", body)
    assert status == 200  # dedup hit, nothing enqueued
    assert json.loads(again)["id"] == json.loads(first)["id"]
    assert len(app.table.list_jobs()) == 1


def test_bad_spec_is_http_400(client):
    with pytest.raises(ServiceError, match="unknown experiment") as err:
        client.submit({"experiment": "nope"})
    assert err.value.kind == "spec"


def test_full_queue_is_http_429(client):
    client.submit(FIG11)
    client.submit({"experiment": "fig11", "params": {"rounds": 3}})
    with pytest.raises(ServiceError, match="queue is full") as err:
        client.submit({"experiment": "fig11", "params": {"rounds": 4}})
    assert err.value.kind == "queue-full"


def test_unknown_job_is_http_404(client):
    with pytest.raises(ServiceError, match="no job") as err:
        client.status("0" * 16)
    assert err.value.kind == "not-found"
    with pytest.raises(ServiceError) as err:
        client.result_text("0" * 16)
    assert err.value.kind == "not-found"


def test_result_of_inflight_job_is_404_with_status(app, client):
    job_id = client.submit(FIG11)["id"]
    status, body = client._request("GET", f"/jobs/{job_id}/result")
    assert status == 404
    assert parse_result(body, kind="job-status")["state"] == "queued"


def test_failed_job_serves_its_envelope_with_409(app, client):
    from repro.serialization import dump_job_failure

    job_id = client.submit(FIG11)["id"]
    app.table.claim("w1")
    # force the terminal state through the table; the envelope text is
    # served verbatim
    envelope = dump_job_failure("BarrierError", "boom", job_id=job_id, attempts=1)
    assert app.table.fail(job_id, "w1", envelope)
    with pytest.raises(ServiceError, match="job .* failed|boom|BarrierError") as err:
        client.result_text(job_id)
    assert err.value.kind == "state"
    status, body = client._request("GET", f"/jobs/{job_id}/result")
    assert status == 409 and body == envelope


def test_job_list_envelope(app, client):
    client.submit(FIG11)
    status, body = client._request("GET", "/jobs")
    payload = parse_result(body, kind="job-list")
    assert status == 200 and len(payload["jobs"]) == 1


def test_unknown_route_is_404(client):
    for path in ("/nope", "/jobs/x/y/z", "/jobs/x/nope"):
        status, _ = client._request("GET", path)
        assert status == 404
    status, _ = client._request("POST", "/nope", b"{}")
    assert status == 404


def test_healthz_and_readyz(app, client):
    assert client.healthz() is True
    ok, ready = client.readyz()
    assert ok and ready["ready"] is True
    assert ready["counts"] == {"queued": 0, "leased": 0, "done": 0, "failed": 0}
    assert "uptime_s" in ready and ready["workers"] == 0
    # Survived-but-counted sweep failures are part of readiness:
    # a reaper quietly erroring every interval must be visible.
    assert ready["reaper"] == {"requeued": 0, "failed": 0, "errors": 0}


def test_drain_flips_readiness_and_refuses_submissions(app, client):
    app.drain(grace_s=1.0)
    # the server socket is closed after drain; talk to the handler
    # methods directly for the post-drain protocol
    status, _, body = app.handle_submit(json.dumps(FIG11).encode())
    assert status == 503
    payload = parse_result(body, kind="service-error")
    assert payload["error"]["kind"] == "draining"
    status, _, body = app.handle_readyz()
    assert status == 503
    assert parse_result(body, kind="ready")["draining"] is True


def test_submit_garbage_body_is_400(client):
    status, body = client._request("POST", "/jobs", b"{not json")
    assert status == 400
    assert parse_result(body, kind="service-error")["error"]["kind"] == "spec"


# -- recovery through the full stack ----------------------------------------


def test_requeued_job_reruns_byte_identical(app, client):
    """Lease loss mid-flight: the first worker's completion is rejected,
    the rerun replays the journal, and the served bytes still match an
    uninterrupted run — the acceptance contract, protocol-level."""
    job_id = client.submit(FIG11)["id"]
    w1 = inline_worker(app)
    # Steal the lease out from under w1 the way the reaper would:
    # expire it and requeue before w1 finishes. Simplest deterministic
    # way inline: run w1 fully, but requeue first so its complete is
    # late. claim() via run_once happens inside, so instead claim here.
    job = app.table.claim(w1.owner)
    assert job["id"] == job_id
    # Reaper acts: force-expire by direct requeue (lease-conditional
    # rejection is what we are testing, not the clock).
    import sqlite3

    conn = sqlite3.connect(app.table.path)
    conn.execute("UPDATE jobs SET lease_expires_at=0 WHERE id=?", (job_id,))
    conn.commit()
    conn.close()
    assert app.table.requeue_expired() == ([job_id], [])

    # w1 finishes late: its result must be discarded.
    w1._execute(job)
    assert w1.stale_results == 1
    assert client.status(job_id)["state"] == "queued"

    # The rerun wins (after the 1s backoff window) and serves bytes
    # identical to a direct run.
    import time

    deadline = time.time() + 30
    w2 = inline_worker(app)
    while time.time() < deadline:
        if w2.run_once():
            break
        time.sleep(0.1)
    from repro.harness import experiments

    assert client.wait(job_id, timeout_s=30)["state"] == "done"
    assert client.result_text(job_id) == experiments.fig11(rounds=2).to_json()
    assert client.status(job_id)["attempts"] == 2


def test_worker_marks_deterministic_failure(app, client):
    """A spec that raises a typed ReproError fails immediately with a
    job-failure envelope — no retries for deterministic errors."""
    table = app.table
    # Enqueue a spec that validates but whose execution raises: fig11
    # with rounds=0 — check it actually raises; otherwise craft one.
    job, _ = table.submit(FIG11)
    claimed = table.claim("w1")

    # Drive the worker's failure path directly via a runner monkeypatch.
    from repro.errors import ExperimentError
    from repro.service import runners

    original = runners.RUNNERS["fig11"]
    runners.RUNNERS["fig11"] = lambda params, executor: (_ for _ in ()).throw(
        ExperimentError("deterministic boom")
    )
    try:
        w = inline_worker(app, owner="w1")
        w._execute(claimed)
    finally:
        runners.RUNNERS["fig11"] = original

    row = table.get(job["id"])
    assert row["state"] == "failed"
    payload = parse_job_failure(row["error"])
    assert payload["error"]["type"] == "ExperimentError"
    assert "deterministic boom" in payload["error"]["message"]


def test_cold_start_recovers_orphaned_leases(tmp_path):
    """A restarted service's first reaper sweep requeues every lease a
    dead instance left behind — restart needs no other recovery step."""
    table = JobTable(tmp_path / "svc" / "jobs.sqlite3", lease_s=0.001)
    job, _ = table.submit(FIG11)
    table.claim("dead-worker")
    import time

    time.sleep(0.01)  # lease long expired; its owner no longer exists

    app = ServiceApp(tmp_path / "svc", port=0, workers=0, reap_interval_s=3600.0)
    app.start()
    try:
        row = app.table.get(job["id"])
        assert row["state"] == "queued" and row["lease_owner"] is None
        assert app.reaper.requeued == 1
    finally:
        app.drain(grace_s=1.0)
