"""Spec validation and runner execution tests."""

import pytest

from repro.errors import ServiceError
from repro.service import execute_spec, validate_spec


# -- validation -------------------------------------------------------------


def test_valid_specs_normalize():
    spec = validate_spec({"experiment": "fig11", "params": {"rounds": 3}})
    assert spec == {"experiment": "fig11", "params": {"rounds": 3}}
    # params is optional and defaults empty
    assert validate_spec({"experiment": "fig11"})["params"] == {}


@pytest.mark.parametrize(
    "bad, match",
    [
        ("not a dict", "must be a JSON object"),
        ({"experiment": "fig11", "extra": 1}, "unknown key"),
        ({"experiment": "fig99"}, "unknown experiment"),
        ({}, "unknown experiment"),
        ({"experiment": "fig11", "params": [1]}, "'params' must be"),
        ({"experiment": "fig11", "params": {"seed": 1}}, "no parameter"),
        ({"experiment": "fig11", "params": {"rounds": "3"}}, "must be int"),
        ({"experiment": "fig11", "params": {"rounds": True}}, "must be int"),
        ({"experiment": "chaos", "params": {"strategy": 7}}, "must be str"),
    ],
)
def test_bad_specs_are_typed_refusals(bad, match):
    with pytest.raises(ServiceError, match=match) as err:
        validate_spec(bad)
    assert err.value.kind == "spec"


# -- execution --------------------------------------------------------------


def test_execute_spec_matches_direct_run(tmp_path):
    """A spec run through the service runner serializes byte-identically
    to calling the experiment directly — the property the whole
    result-serving path leans on."""
    from repro.harness import experiments

    reference = experiments.fig11(rounds=2).to_json()
    served = execute_spec(
        {"experiment": "fig11", "params": {"rounds": 2}},
        journal_dir=tmp_path / "journal",
    )
    assert served == reference


def test_execute_spec_rejects_invalid(tmp_path):
    with pytest.raises(ServiceError, match="unknown experiment"):
        execute_spec({"experiment": "nope"}, journal_dir=tmp_path)
