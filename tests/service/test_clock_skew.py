"""Lease correctness when one host's clock is wrong (satellite of the
crash matrix's skew configs, docs/crashtest.md).

Two table handles share one SQLite file but read *different* clocks —
:func:`crashpoints.skewed_clock` over a common fake — with the skew
deliberately larger than the heartbeat period (``lease_s / 3``).  The
invariant under every skew: a worker either keeps its lease through
heartbeats or loses it cleanly to the reaper — **never** do two owners
both complete (``completions`` stays at 1, stamped by one owner).
"""

import pytest

from repro.faults.crashpoints import skewed_clock
from repro.service import JobTable

SPEC = {"experiment": "fig11", "params": {"rounds": 5}}
LEASE_S = 3.0
#: more than LEASE_S / 3: the skew overwhelms a whole heartbeat period.
SKEW_S = 1.2


class FakeClock:
    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        self.now += seconds
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


def make_table(path, clock, skew_s: float) -> JobTable:
    return JobTable(
        path,
        lease_s=LEASE_S,
        retry_budget=2,
        backoff_base_s=0.0,
        backoff_cap_s=0.0,
        clock=skewed_clock(clock, skew_s),
    )


@pytest.fixture
def tables(tmp_path, clock):
    """(fast host's view, true-clock view, slow host's view) of one table."""
    path = tmp_path / "jobs.sqlite3"
    return (
        make_table(path, clock, +SKEW_S),
        make_table(path, clock, 0.0),
        make_table(path, clock, -SKEW_S),
    )


def test_fast_worker_writes_an_early_deadline(tables, clock):
    """A fast-clock claimant burns part of its own lease: the deadline
    it stamps is SKEW_S ahead of true time, so the fleet reaps it
    SKEW_S early — conservative, never unsafe."""
    fast, true, _ = tables
    job, _ = true.submit(SPEC)
    assert fast.claim("worker-1@fast") is not None
    row = true.get(job["id"])
    assert row["lease_expires_at"] == pytest.approx(
        clock.now + SKEW_S + LEASE_S
    )


def test_slow_worker_loses_the_lease_without_heartbeats(tables, clock):
    """A slow host still believes its lease is alive after true expiry;
    the reaper (true clock) must win, and the slow host's late complete
    must bounce — one completion, by the new owner."""
    _, true, slow = tables
    job, _ = true.submit(SPEC)
    clock.advance(SKEW_S)  # the slow host's view reaches eligible_at
    assert slow.claim("worker-1@slow") is not None
    # True time passes the deadline the slow host wrote (which is
    # SKEW_S *short* of what the slow host believes).
    clock.advance(LEASE_S - SKEW_S)
    assert true.requeue_expired() == ([job["id"]], [])
    # The slow host, whose own clock shows time remaining, now tries to
    # finish: its lease is gone, the update must refuse.
    assert not slow.complete(job["id"], "worker-1@slow", "late-bytes")
    assert true.claim("worker-2@true") is not None
    assert true.complete(job["id"], "worker-2@true", "fresh-bytes")
    row = true.get(job["id"])
    assert row["completions"] == 1
    assert row["completed_by"] == "worker-2@true"
    assert row["result"] == "fresh-bytes"


def test_slow_worker_keeps_the_lease_through_heartbeats(tables, clock):
    """Heartbeats at the lease/3 cadence outrun even a skewed clock:
    each beat rewrites the deadline from the *slow* clock, but the beat
    arrives every LEASE_S/3 of true time, so the deadline never falls
    behind true now as long as SKEW_S < LEASE_S * 2/3."""
    _, true, slow = tables
    job, _ = true.submit(SPEC)
    clock.advance(SKEW_S)  # the slow host's view reaches eligible_at
    assert slow.claim("worker-1@slow") is not None
    for _ in range(6):  # two full lease periods of true time
        clock.advance(LEASE_S / 3)
        assert slow.heartbeat(job["id"], "worker-1@slow")
        assert true.requeue_expired() == ([], [])
    assert slow.complete(job["id"], "worker-1@slow", "bytes")
    row = true.get(job["id"])
    assert row["completions"] == 1
    assert row["completed_by"] == "worker-1@slow"


def test_never_both_owners_complete_under_skew(tables, clock):
    """The race the skew makes likely: the old (slow) owner and the
    requeued (fast) owner both hold results.  Whoever commits second
    must bounce off the lease-conditional update — completions is 1
    under every interleaving."""
    fast, true, slow = tables
    job, _ = true.submit(SPEC)
    clock.advance(SKEW_S)  # the slow host's view reaches eligible_at
    assert slow.claim("worker-1@slow") is not None
    clock.advance(LEASE_S)  # true expiry, slow host still confident
    assert true.requeue_expired() == ([job["id"]], [])
    assert fast.claim("worker-2@fast") is not None
    # Order A: the new owner completes first, the old one bounces.
    assert fast.complete(job["id"], "worker-2@fast", "new-bytes")
    assert not slow.complete(job["id"], "worker-1@slow", "old-bytes")
    row = true.get(job["id"])
    assert row["state"] == "done"
    assert row["completions"] == 1
    assert row["completed_by"] == "worker-2@fast"
    assert row["result"] == "new-bytes"


def test_never_both_owners_complete_old_owner_first(tables, clock):
    """Order B: the *old* owner sneaks its result in after requeue but
    before the new claim — refused too: the requeue already revoked the
    lease, so only the rerun can complete."""
    fast, true, slow = tables
    job, _ = true.submit(SPEC)
    clock.advance(SKEW_S)  # the slow host's view reaches eligible_at
    assert slow.claim("worker-1@slow") is not None
    clock.advance(LEASE_S)
    assert true.requeue_expired() == ([job["id"]], [])
    assert not slow.complete(job["id"], "worker-1@slow", "old-bytes")
    assert fast.claim("worker-2@fast") is not None
    assert fast.complete(job["id"], "worker-2@fast", "new-bytes")
    row = true.get(job["id"])
    assert row["completions"] == 1
    assert row["completed_by"] == "worker-2@fast"


def test_fast_reaper_reaps_early_but_never_double_completes(tables, clock):
    """A reaper running on the fast host reaps a healthy lease SKEW_S
    early.  That costs a redundant re-execution — the deterministic
    rerun is byte-identical — but the completion counter still ends at
    exactly 1."""
    fast, true, slow = tables
    job, _ = true.submit(SPEC)
    assert true.claim("worker-1@true") is not None
    # The fast reaper sees expiry LEASE_S - SKEW_S into the true lease.
    clock.advance(LEASE_S - SKEW_S)
    assert fast.requeue_expired() == ([job["id"]], [])
    assert not true.complete(job["id"], "worker-1@true", "old-bytes")
    # The requeue stamped eligible_at from the fast clock; true time
    # must catch up to it before the honest host can claim.
    clock.advance(SKEW_S)
    assert true.claim("worker-2@true") is not None
    assert true.complete(job["id"], "worker-2@true", "bytes")
    assert true.get(job["id"])["completions"] == 1
