"""Lease lifecycle tests for the durable job table.

Every test drives the table through an injectable fake clock, so the
edges the lease protocol hinges on — a heartbeat arriving *exactly* at
the expiry instant, the reaper racing a worker's late result, the
retry budget running out — are deterministic, not timing-dependent.
"""

import pytest

from repro.errors import ServiceError
from repro.serialization import parse_job_failure
from repro.service import JobTable, job_id_for

SPEC = {"experiment": "fig11", "params": {"rounds": 5}}
OTHER = {"experiment": "fig11", "params": {"rounds": 7}}


class FakeClock:
    """A settable clock the table reads on every operation."""

    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        self.now += seconds
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def table(tmp_path, clock):
    return JobTable(
        tmp_path / "jobs.sqlite3",
        lease_s=30.0,
        retry_budget=2,
        backoff_base_s=1.0,
        backoff_cap_s=60.0,
        clock=clock,
    )


# -- identity and submission ------------------------------------------------


def test_job_id_is_deterministic_and_order_insensitive():
    flipped = {"params": {"rounds": 5}, "experiment": "fig11"}
    assert job_id_for(SPEC) == job_id_for(flipped)
    assert len(job_id_for(SPEC)) == 16
    assert job_id_for(SPEC) != job_id_for(OTHER)


def test_submit_dedups_to_one_row(table):
    job, created = table.submit(SPEC)
    assert created and job["state"] == "queued" and job["attempts"] == 0
    again, created = table.submit(dict(SPEC))
    assert not created
    assert again["id"] == job["id"]
    assert len(table.list_jobs()) == 1


def test_submit_dedups_in_every_state(table):
    job, _ = table.submit(SPEC)
    claimed = table.claim("w1")
    assert claimed["id"] == job["id"]
    _, created = table.submit(SPEC)
    assert not created  # leased
    assert table.complete(job["id"], "w1", "envelope-bytes")
    done, created = table.submit(SPEC)
    assert not created and done["state"] == "done"  # served, not re-run


def test_full_queue_refuses_new_work_but_not_dedup(tmp_path, clock):
    table = JobTable(tmp_path / "jobs.sqlite3", max_queued=1, clock=clock)
    table.submit(SPEC)
    with pytest.raises(ServiceError, match="queue is full") as err:
        table.submit(OTHER)
    assert err.value.kind == "queue-full"
    _, created = table.submit(SPEC)  # dedup costs no execution: never refused
    assert not created


def test_schema_mismatch_fails_loudly(tmp_path, clock):
    import sqlite3

    JobTable(tmp_path / "jobs.sqlite3", clock=clock)
    conn = sqlite3.connect(tmp_path / "jobs.sqlite3")
    conn.execute("UPDATE meta SET value='999' WHERE key='job-schema'")
    conn.commit()
    conn.close()
    with pytest.raises(ServiceError, match="schema 999"):
        JobTable(tmp_path / "jobs.sqlite3", clock=clock)


def test_constructor_rejects_bad_knobs(tmp_path):
    with pytest.raises(ServiceError, match="lease_s"):
        JobTable(tmp_path / "a.sqlite3", lease_s=0)
    with pytest.raises(ServiceError, match="retry_budget"):
        JobTable(tmp_path / "b.sqlite3", retry_budget=-1)
    with pytest.raises(ServiceError, match="max_queued"):
        JobTable(tmp_path / "c.sqlite3", max_queued=0)


# -- claim ordering ---------------------------------------------------------


def test_claim_takes_oldest_eligible_first(table, clock):
    first, _ = table.submit(SPEC)
    clock.advance(1.0)
    table.submit(OTHER)
    job = table.claim("w1")
    assert job["id"] == first["id"]
    assert job["state"] == "leased"
    assert job["attempts"] == 1
    assert job["lease_owner"] == "w1"
    assert job["lease_expires_at"] == pytest.approx(clock.now + 30.0)


def test_claim_respects_backoff_eligibility(table, clock):
    table.submit(SPEC)
    table.claim("w1")
    clock.advance(30.0)  # lease expires
    requeued, _ = table.requeue_expired()
    # eligible_at = now + backoff_base_s * 2**0 = now + 1s
    assert table.claim("w2") is None
    clock.advance(1.0)
    job = table.claim("w2")
    assert job is not None and job["id"] == requeued[0]


def test_claim_empty_table_returns_none(table):
    assert table.claim("w1") is None


# -- heartbeat edges (satellite: lease lifecycle) ---------------------------


def test_heartbeat_extends_a_live_lease(table, clock):
    job, _ = table.submit(SPEC)
    table.claim("w1")
    clock.advance(29.999)
    assert table.heartbeat(job["id"], "w1")
    refreshed = table.get(job["id"])
    assert refreshed["lease_expires_at"] == pytest.approx(clock.now + 30.0)


def test_heartbeat_exactly_at_expiry_is_refused(table, clock):
    """Expiry is inclusive: at the deadline instant the reaper is the
    only authority, so a heartbeat landing exactly then must lose."""
    job, _ = table.submit(SPEC)
    table.claim("w1")
    clock.advance(30.0)  # now == lease_expires_at, to the tick
    assert not table.heartbeat(job["id"], "w1")
    # ...and the reaper agrees the lease is dead at the same instant.
    requeued, failed = table.requeue_expired()
    assert requeued == [job["id"]] and failed == []


def test_heartbeat_from_wrong_owner_is_refused(table, clock):
    job, _ = table.submit(SPEC)
    table.claim("w1")
    assert not table.heartbeat(job["id"], "w2")
    assert not table.heartbeat("no-such-job", "w1")


# -- reaper vs late result (satellite: lease lifecycle) ---------------------


def test_late_result_before_reap_is_accepted(table, clock):
    """A worker may complete after its deadline as long as the reaper
    has not acted: the work is done, accepting beats re-running."""
    job, _ = table.submit(SPEC)
    table.claim("w1")
    clock.advance(45.0)  # deadline long gone, reaper slow
    assert table.complete(job["id"], "w1", "envelope-bytes")
    done = table.get(job["id"])
    assert done["state"] == "done" and done["result"] == "envelope-bytes"
    # The reaper arriving now finds nothing leased: the race commuted.
    assert table.requeue_expired() == ([], [])


def test_late_result_after_reap_is_discarded(table, clock):
    """Once the reaper requeued the job, the original owner's result
    must bounce off the lease-conditional update — the rerun wins."""
    job, _ = table.submit(SPEC)
    table.claim("w1")
    clock.advance(30.0)
    assert table.requeue_expired() == ([job["id"]], [])
    assert not table.complete(job["id"], "w1", "late-bytes")
    assert not table.fail(job["id"], "w1", "late-error")
    row = table.get(job["id"])
    assert row["state"] == "queued" and row["result"] is None
    # The second attempt owns the job outright.
    clock.advance(1.0)
    rerun = table.claim("w2")
    assert rerun["attempts"] == 2
    assert table.complete(job["id"], "w2", "rerun-bytes")
    assert table.get(job["id"])["result"] == "rerun-bytes"


def test_completion_requires_the_current_owner(table, clock):
    job, _ = table.submit(SPEC)
    table.claim("w1")
    assert not table.complete(job["id"], "w2", "bytes")
    assert table.get(job["id"])["state"] == "leased"


# -- retry budget (satellite: lease lifecycle) ------------------------------


def test_backoff_grows_exponentially_and_caps(tmp_path, clock):
    table = JobTable(
        tmp_path / "jobs.sqlite3",
        lease_s=10.0,
        retry_budget=10,
        backoff_base_s=1.0,
        backoff_cap_s=4.0,
        clock=clock,
    )
    job, _ = table.submit(SPEC)
    delays = []
    for _ in range(5):
        eligible = table.get(job["id"])["eligible_at"]
        clock.now = max(clock.now, eligible)
        assert table.claim("w1") is not None
        clock.advance(10.0)
        table.requeue_expired()
        delays.append(table.get(job["id"])["eligible_at"] - clock.now)
    assert delays == [1.0, 2.0, 4.0, 4.0, 4.0]  # base * 2**(n-1), capped


def test_retry_budget_exhaustion_yields_typed_failure(table, clock):
    """retry_budget=2 buys 3 executions total; the third expiry marks
    the job failed with a parseable ``job-failure`` envelope."""
    job, _ = table.submit(SPEC)
    for attempt in (1, 2):
        clock.now = max(clock.now, table.get(job["id"])["eligible_at"])
        claimed = table.claim(f"w{attempt}")
        assert claimed["attempts"] == attempt
        clock.advance(30.0)
        requeued, failed = table.requeue_expired()
        assert requeued == [job["id"]] and failed == []
    clock.now = max(clock.now, table.get(job["id"])["eligible_at"])
    assert table.claim("w3")["attempts"] == 3
    clock.advance(30.0)
    requeued, failed = table.requeue_expired()
    assert requeued == [] and failed == [job["id"]]

    row = table.get(job["id"])
    assert row["state"] == "failed"
    payload = parse_job_failure(row["error"])
    assert payload["id"] == job["id"]
    assert payload["attempts"] == 3
    assert payload["error"]["type"] == "LeaseRetryExhausted"
    assert "retry budget 2" in payload["error"]["message"]
    # Terminal: nothing left to claim or reap.
    clock.advance(120.0)
    assert table.claim("w4") is None
    assert table.requeue_expired() == ([], [])


def test_release_refunds_the_attempt(table, clock):
    """Graceful preemption (SIGTERM drain) hands the job back without
    charging the retry budget — only crashes spend attempts."""
    job, _ = table.submit(SPEC)
    assert table.claim("w1")["attempts"] == 1
    assert table.release(job["id"], "w1")
    row = table.get(job["id"])
    assert row["state"] == "queued" and row["attempts"] == 0
    assert row["eligible_at"] == clock.now  # no backoff either
    assert not table.release(job["id"], "w1")  # lease is gone


# -- inspection -------------------------------------------------------------


def test_counts_cover_every_state(table, clock):
    assert table.counts() == {"queued": 0, "leased": 0, "done": 0, "failed": 0}
    table.submit(SPEC)
    table.submit(OTHER)
    claimed = table.claim("w1")
    counts = table.counts()
    assert counts["queued"] == 1 and counts["leased"] == 1
    table.complete(claimed["id"], "w1", "bytes")
    assert table.counts()["done"] == 1


def test_get_unknown_job_is_none(table):
    assert table.get("0" * 16) is None


# -- completion proof columns (schema v2) -----------------------------------


def test_schema_version_is_2():
    from repro.service.jobs import JOB_SCHEMA_VERSION

    assert JOB_SCHEMA_VERSION == 2


def test_complete_stamps_completions_and_completed_by(table, clock):
    job, _ = table.submit(SPEC)
    row = table.get(job["id"])
    assert row["completions"] == 0 and row["completed_by"] is None
    table.claim("worker-1@hostA")
    assert table.complete(job["id"], "worker-1@hostA", "bytes")
    row = table.get(job["id"])
    assert row["completions"] == 1
    assert row["completed_by"] == "worker-1@hostA"


def test_rejected_late_complete_does_not_touch_the_proof(table, clock):
    """The no-double-completion invariant is *recorded*: a bounced late
    result must leave both proof columns exactly as the winner wrote
    them."""
    job, _ = table.submit(SPEC)
    table.claim("worker-1@hostA")
    clock.advance(30.0)
    table.requeue_expired()
    clock.advance(1.0)
    table.claim("worker-2@hostB")
    assert table.complete(job["id"], "worker-2@hostB", "winner-bytes")
    assert not table.complete(job["id"], "worker-1@hostA", "loser-bytes")
    row = table.get(job["id"])
    assert row["completions"] == 1
    assert row["completed_by"] == "worker-2@hostB"


# -- locked-database retry (satellite: contention never crashes a worker) ---


def test_locked_error_is_retried_with_backoff(table, monkeypatch):
    """An injected 'database is locked' inside the complete transaction
    must be absorbed by the retry loop — the caller never sees it."""
    import time as _time

    from repro.faults import crashpoints
    from repro.faults.crashpoints import CrashPlan, CrashSpec

    sleeps = []
    monkeypatch.setattr(
        "repro.service.jobs.time.sleep", lambda s: sleeps.append(s)
    )
    job, _ = table.submit(SPEC)
    table.claim("w1")
    plan = CrashPlan(
        [
            CrashSpec("jobs.complete.pre-commit", "raise-operational", hit=1),
            CrashSpec("jobs.complete.pre-commit", "raise-operational", hit=2),
        ]
    )
    with crashpoints.armed(plan) as armed:
        assert table.complete(job["id"], "w1", "bytes")
        assert len(armed.fired) == 2
    assert table.get(job["id"])["state"] == "done"
    # Capped exponential backoff: base * 2**attempt.
    assert sleeps == [
        pytest.approx(table.lock_retry_base_s),
        pytest.approx(table.lock_retry_base_s * 2),
    ]
    _ = _time  # keep the import local to the test


def test_locked_retries_are_capped(table, monkeypatch):
    """Past lock_retries attempts the OperationalError propagates — a
    permanently wedged database must not hang the worker forever."""
    import sqlite3

    from repro.faults import crashpoints
    from repro.faults.crashpoints import CrashPlan, CrashSpec

    monkeypatch.setattr("repro.service.jobs.time.sleep", lambda s: None)
    job, _ = table.submit(SPEC)
    table.claim("w1")
    plan = CrashPlan(
        [
            CrashSpec("jobs.complete.pre-commit", "raise-operational", hit=h)
            for h in range(1, table.lock_retries + 2)
        ]
    )
    with crashpoints.armed(plan):
        with pytest.raises(sqlite3.OperationalError, match="database is locked"):
            table.complete(job["id"], "w1", "bytes")
    # The transaction never committed: the job is still leased, and a
    # clean retry by the same owner succeeds.
    assert table.get(job["id"])["state"] == "leased"
    assert table.complete(job["id"], "w1", "bytes")


def test_non_locked_operational_error_is_not_retried(table, monkeypatch):
    """Only contention is retried; anything else propagates first try."""
    import sqlite3

    from repro.faults import crashpoints
    from repro.faults.crashpoints import CrashPlan, CrashSpec

    sleeps = []
    monkeypatch.setattr(
        "repro.service.jobs.time.sleep", lambda s: sleeps.append(s)
    )
    job, _ = table.submit(SPEC)
    table.claim("w1")
    with crashpoints.armed(
        CrashPlan([CrashSpec("jobs.complete.pre-commit", "raise-oserror")])
    ):
        with pytest.raises(OSError, match="injected I/O error"):
            table.complete(job["id"], "w1", "bytes")
    assert sleeps == []
    assert table.get(job["id"])["state"] == "leased"  # rolled back
