"""Unit tests for span tracing."""

import pytest

from repro.simcore import Span, Trace


def test_span_duration():
    assert Span("b0", "compute", 10, 25).duration == 15


def test_span_rejects_negative_duration():
    with pytest.raises(ValueError):
        Span("b0", "compute", 10, 5)


def test_trace_add_and_filter():
    tr = Trace()
    tr.add("b0", "compute", 0, 10)
    tr.add("b0", "sync", 10, 14)
    tr.add("b1", "compute", 0, 12)
    assert len(tr) == 3
    assert tr.total("compute") == 22
    assert tr.total("compute", owner="b0") == 10
    assert tr.total("sync") == 4
    assert tr.total() == 26


def test_trace_phases_in_first_appearance_order():
    tr = Trace()
    tr.add("a", "launch", 0, 1)
    tr.add("a", "compute", 1, 2)
    tr.add("b", "launch", 0, 1)
    assert tr.phases() == ["launch", "compute"]


def test_trace_by_phase_totals():
    tr = Trace()
    tr.add("a", "x", 0, 5)
    tr.add("b", "x", 0, 5)
    tr.add("a", "y", 5, 6)
    assert tr.by_phase() == {"x": 10, "y": 1}


def test_trace_meta_is_preserved():
    tr = Trace()
    span = tr.add("b0", "sync", 0, 3, round=7)
    assert span.meta == {"round": 7}
    assert tr.spans("sync")[0].meta == {"round": 7}


def test_trace_merge_sorts_by_start():
    a, b = Trace(), Trace()
    a.add("a", "x", 10, 20)
    b.add("b", "x", 0, 5)
    merged = a.merge([b])
    assert [s.owner for s in merged] == ["b", "a"]
    assert len(a) == 1 and len(b) == 1  # originals untouched


def test_trace_clear():
    tr = Trace()
    tr.add("a", "x", 0, 1)
    tr.clear()
    assert len(tr) == 0
    assert tr.total() == 0
