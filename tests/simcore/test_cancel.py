"""Tests for process cancellation in the engine."""


import pytest

from repro.simcore import (
    Acquire,
    Cancelled,
    Delay,
    Engine,
    Join,
    ProcessState,
    Release,
    Resource,
    Signal,
    Spawn,
    WaitUntil,
    make_engine,
)


def test_cancel_scheduled_process_never_runs_again():
    eng = Engine()
    ticks = []

    def ticker():
        while True:
            yield Delay(10)
            ticks.append(eng.now)

    p = eng.spawn(ticker())

    def killer():
        yield Delay(25)
        eng.cancel(p, "enough")

    eng.spawn(killer())
    eng.run()
    assert ticks == [10, 20]
    assert p.state == ProcessState.CANCELLED
    assert not p.alive


def test_cancel_returns_false_for_finished_process():
    eng = Engine()

    def quick():
        yield Delay(1)

    p = eng.spawn(quick())
    eng.run()
    assert eng.cancel(p) is False


def test_cancelled_waiter_detached_from_signal():
    eng = Engine()
    sig = Signal("s")

    def waiter():
        yield WaitUntil(sig, lambda: False, "forever")

    p = eng.spawn(waiter())

    def killer():
        yield Delay(5)
        eng.cancel(p, "stuck")

    eng.spawn(killer())
    eng.run()  # would raise DeadlockError if the waiter stayed parked
    assert sig.waiter_count == 0


def test_cancelled_holder_releases_resource_to_next_waiter():
    """The crucial cleanup: killing a slot holder frees the slot."""
    eng = Engine()
    res = Resource("slot")
    got = []

    def holder():
        yield Acquire(res)
        yield Delay(10_000)  # holds ~forever
        yield Release(res)

    def waiter():
        yield Acquire(res)
        got.append(eng.now)
        yield Release(res)

    h = eng.spawn(holder())
    eng.spawn(waiter())

    def killer():
        yield Delay(50)
        eng.cancel(h, "kill holder")

    eng.spawn(killer())
    eng.run()
    assert got == [50]  # waiter granted the instant the holder died


def test_cancelled_queued_process_removed_from_resource_queue():
    eng = Engine()
    res = Resource("slot")

    def holder():
        yield Acquire(res)
        yield Delay(100)
        yield Release(res)

    def queued():
        yield Acquire(res)
        yield Release(res)

    eng.spawn(holder())
    q = eng.spawn(queued())

    def killer():
        yield Delay(10)
        eng.cancel(q, "no need")

    eng.spawn(killer())
    eng.run()
    assert res.queue_length == 0
    assert res.available == 1


def test_joiners_of_cancelled_process_get_sentinel():
    eng = Engine()
    results = []

    def sleeper():
        yield Delay(10_000)

    s = eng.spawn(sleeper())

    def joiner():
        result = yield Join(s)
        results.append(result)

    eng.spawn(joiner())

    def killer():
        yield Delay(7)
        eng.cancel(s, "watchdog")

    eng.spawn(killer())
    eng.run()
    assert len(results) == 1
    assert isinstance(results[0], Cancelled)
    assert results[0].reason == "watchdog"


def test_join_on_already_cancelled_process_is_immediate():
    eng = Engine()

    def sleeper():
        yield Delay(10_000)

    s = eng.spawn(sleeper())
    results = []

    def late_joiner():
        yield Delay(100)
        result = yield Join(s)
        results.append((eng.now, result))

    eng.spawn(late_joiner())

    def killer():
        yield Delay(5)
        eng.cancel(s, "early kill")

    eng.spawn(killer())
    eng.run()
    assert results[0][0] == 100
    assert isinstance(results[0][1], Cancelled)


def test_cancelled_holder_frees_every_held_resource():
    """A holder of several resources frees all of them on cancel."""
    eng = Engine()
    a, b = Resource("a"), Resource("b")
    got = []

    def hoarder():
        yield Acquire(a)
        yield Acquire(b)
        yield Delay(10_000)
        yield Release(b)
        yield Release(a)

    def waiter(res, tag):
        yield Delay(1)  # let the hoarder take both units first
        yield Acquire(res)
        got.append((tag, eng.now))
        yield Release(res)

    h = eng.spawn(hoarder())
    eng.spawn(waiter(a, "a"))
    eng.spawn(waiter(b, "b"))

    def killer():
        yield Delay(30)
        eng.cancel(h, "hoarding")

    eng.spawn(killer())
    eng.run()
    assert sorted(got) == [("a", 30), ("b", 30)]
    assert a.available == 1 and b.available == 1
    assert h.holding == []


def test_cancel_wakes_multiple_pending_joiners():
    """Every joiner parked on the victim gets the Cancelled sentinel."""
    eng = Engine()
    results = []

    def sleeper():
        yield Delay(10_000)

    s = eng.spawn(sleeper())

    def joiner(tag):
        result = yield Join(s)
        results.append((tag, eng.now, result))

    for tag in ("x", "y", "z"):
        eng.spawn(joiner(tag))

    def killer():
        yield Delay(12)
        eng.cancel(s, "abort")

    eng.spawn(killer())
    eng.run()
    assert len(results) == 3
    assert {tag for tag, _, _ in results} == {"x", "y", "z"}
    assert all(t == 12 for _, t, _ in results)
    assert all(isinstance(r, Cancelled) for _, _, r in results)
    assert all(r.reason == "abort" for _, _, r in results)


def test_double_cancel_is_idempotent():
    """The second cancel is a no-op returning False, not an error."""
    eng = Engine()

    def sleeper():
        yield Delay(10_000)

    s = eng.spawn(sleeper())
    outcomes = []

    def killer():
        yield Delay(5)
        outcomes.append(eng.cancel(s, "first"))
        outcomes.append(eng.cancel(s, "second"))

    eng.spawn(killer())
    eng.run()
    assert outcomes == [True, False]
    assert s.state == ProcessState.CANCELLED


def test_cancelling_a_join_blocked_process_detaches_it():
    eng = Engine()

    def sleeper():
        yield Delay(200)

    s = eng.spawn(sleeper())

    def joiner():
        yield Join(s)

    j = eng.spawn(joiner())

    def killer():
        yield Delay(10)
        eng.cancel(j, "impatient")

    eng.spawn(killer())
    eng.run()
    assert j.state == ProcessState.CANCELLED
    assert s.state == ProcessState.DONE
    assert j not in s.joiners


# ---------------------------------------------------------------------------
# O(1) tombstoned cancellation (both engines)
# ---------------------------------------------------------------------------
#
# Engine.cancel used to leave the cancelled wakeup as a dead tuple in
# the heap, visible to nothing but still popped and compared.  Both
# engines now tombstone the entry in place; these regressions pin the
# observable consequences — cancel-then-reschedule at the *same*
# timestamp, and pending_events counting live wakeups only.

@pytest.fixture(params=["reference", "fast"])
def any_engine(request):
    return make_engine(request.param)


def test_cancel_then_respawn_at_same_timestamp(any_engine):
    """The tombstone must not shadow a replacement at the same time.

    Kill a sleeper mid-flight and spawn its replacement scheduled at
    the exact timestamp the stale wakeup occupied; the replacement must
    dispatch there, once, with no interference from the dead entry.
    """
    eng = any_engine
    ran = []

    def sleeper():
        yield Delay(100)
        ran.append(("stale", eng.now))

    def replacement():
        yield Delay(75)  # spawned at t=25 -> wakes at the stale t=100
        ran.append(("fresh", eng.now))

    victim = eng.spawn(sleeper())

    def killer():
        yield Delay(25)
        assert eng.cancel(victim, "superseded") is True
        yield Spawn(replacement(), "replacement")

    eng.spawn(killer())
    eng.run()
    assert ran == [("fresh", 100)]
    assert victim.state == ProcessState.CANCELLED


def test_pending_events_ignores_tombstones(any_engine):
    """pending_events counts live wakeups, not dead heap entries."""
    eng = any_engine
    observed = []

    def sleeper():
        yield Delay(1000)

    victims = [eng.spawn(sleeper()) for _ in range(3)]
    survivor = eng.spawn(sleeper())

    def watcher():
        yield Delay(10)
        observed.append(eng.pending_events(ignore=(me,)))
        for v in victims:
            eng.cancel(v, "bulk kill")
        observed.append(eng.pending_events(ignore=(me,)))
        observed.append(eng.pending_events())

    me = eng.spawn(watcher())
    eng.run()
    # Before: 4 sleepers (watcher discounted).  After: only the
    # survivor; including the watcher itself there is still only the
    # survivor because the watcher has no further wakeup scheduled.
    assert observed == [4, 1, 1]
    assert survivor.state == ProcessState.DONE


def test_cancel_storm_then_full_drain(any_engine):
    """Hundreds of tombstones at one timestamp never block the queue."""
    eng = any_engine
    ran = []

    def sleeper(i):
        yield Delay(500)
        ran.append(i)

    procs = [eng.spawn(sleeper(i)) for i in range(200)]

    def killer():
        yield Delay(1)
        for p in procs[::2]:  # kill every other one
            eng.cancel(p, "thin the herd")

    eng.spawn(killer())
    eng.run()
    # Survivors dispatch at t=500 in spawn order, none of the dead run.
    assert ran == list(range(1, 200, 2))
    assert eng.pending_events() == 0
