"""Property-based tests: CalendarQueue against the reference heap.

The fast engine's queue (docs/engine.md) must dequeue in *exactly* the
reference engine's ``(when, priority, seq)`` order under any interleaved
push/pop/cancel sequence — same-timestamp ties, cancelled wakeups and
horizon push-backs included.  The model here is the reference engine's
own structure: one global ``heapq`` of the same entry lists with lazy
tombstone skipping.
"""

import heapq
import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcore import CalendarQueue

#: stands in for the Process slot; the queue only checks it for None.
ALIVE = object()

# Operations: pushes draw from a tiny timestamp range so same-when ties
# are the common case, not the edge case.  Priorities mimic the schedule
# fuzzer's tiebreak draws (duplicates on purpose — seq must break them).
_PUSH = st.tuples(
    st.just("push"), st.integers(0, 4), st.sampled_from([0.0, 0.25, 0.5, 1.0])
)
_POP = st.tuples(st.just("pop"), st.just(0), st.just(0.0))
_CANCEL = st.tuples(st.just("cancel"), st.integers(0, 10**6), st.just(0.0))
OPS = st.lists(st.one_of(_PUSH, _POP, _CANCEL), max_size=80)


def _heap_pop(ref):
    """Pop the next live entry from the model heap (skip tombstones)."""
    while ref:
        entry = heapq.heappop(ref)
        if entry[3] is not None:
            return entry
    return None


def _drive(queue, ops, ordered):
    """Run ``ops`` against the queue and the model heap in lockstep.

    Entries are the engine's mutable ``[when, priority, seq, process,
    value]`` lists; ``seq`` increases monotonically across pushes (the
    engine's invariant) and is unique, so list comparison in the model
    heap never reaches the process slot.
    """
    ref = []
    live = {}  # seq -> (queue entry, model entry)
    seq = itertools.count(1)

    for kind, a, b in ops:
        if kind == "push":
            s = next(seq)
            priority = b if ordered else 0.0
            mine = [a, priority, s, ALIVE, None]
            model = [a, priority, s, ALIVE, None]
            queue.push(mine)
            heapq.heappush(ref, model)
            live[s] = (mine, model)
        elif kind == "pop":
            got = queue.pop()
            expected = _heap_pop(ref)
            assert (got is None) == (expected is None)
            if got is not None:
                assert got[:3] == expected[:3]
                del live[got[2]]
        else:  # cancel a live (still-queued) entry, O(1) tombstone
            if live:
                key = sorted(live)[a % len(live)]
                mine, model = live.pop(key)
                queue.cancel(mine)
                model[3] = None
                model[4] = None
    assert len(queue) == len(live)
    return ref, live


@settings(max_examples=120, deadline=None)
@given(ops=OPS, ordered=st.booleans())
def test_dequeue_order_matches_reference_heap(ops, ordered):
    """Any push/pop/cancel interleaving drains in reference heap order."""
    queue = CalendarQueue(ordered=ordered)
    ref, live = _drive(queue, ops, ordered)
    # Drain what's left: the orders must agree to the last entry.
    while True:
        got = queue.pop()
        expected = _heap_pop(ref)
        assert (got is None) == (expected is None)
        if got is None:
            break
        assert got[:3] == expected[:3]
    assert len(queue) == 0


@settings(max_examples=80, deadline=None)
@given(ops=OPS, ordered=st.booleans())
def test_pushback_restores_head(ops, ordered):
    """Horizon push-back: pop + pushback is a no-op on dequeue order.

    In FIFO mode the popped head holds the bucket's oldest seq, so it
    must return to the *front* — a plain append would misorder it behind
    newer same-timestamp entries.
    """
    queue = CalendarQueue(ordered=ordered)
    ref, _live = _drive(queue, ops, ordered)
    head = queue.pop()
    if head is None:
        return
    queue.pushback(head)
    got = queue.pop()
    assert got is head


@settings(max_examples=60, deadline=None)
@given(when=st.integers(0, 3), ordered=st.booleans())
def test_cancel_then_reschedule_same_timestamp(when, ordered):
    """A cancelled entry never shadows its replacement at the same time.

    This is the queue-level face of the ``Engine.cancel`` regression:
    cancel a wakeup, reschedule the process at the *same* timestamp, and
    the tombstone must be skipped while the new entry dispatches.
    """
    queue = CalendarQueue(ordered=ordered)
    stale = [when, 0.0, 1, ALIVE, "stale"]
    queue.push(stale)
    queue.cancel(stale)
    fresh = [when, 0.0, 2, ALIVE, "fresh"]
    queue.push(fresh)
    assert queue.peek_time() == when
    assert queue.pop() is fresh
    assert queue.pop() is None
    assert len(queue) == 0
