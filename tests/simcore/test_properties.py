"""Property-based tests of the discrete-event engine itself."""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcore import (
    Acquire,
    Delay,
    Engine,
    Join,
    Release,
    Resource,
    Spawn,
)


@settings(max_examples=40, deadline=None)
@given(
    delays=st.lists(st.integers(0, 1000), min_size=1, max_size=20),
)
def test_parallel_delays_finish_at_max(delays):
    """N concurrent sleepers finish exactly when the longest ends."""
    eng = Engine()

    def sleeper(d):
        yield Delay(d)

    for d in delays:
        eng.spawn(sleeper(d))
    assert eng.run() == max(delays)


@settings(max_examples=40, deadline=None)
@given(
    delays=st.lists(st.integers(0, 200), min_size=1, max_size=15),
)
def test_serialized_delays_finish_at_sum(delays):
    """N contenders on a unit resource finish at the sum of hold times."""
    eng = Engine()
    res = Resource("unit")

    def contender(d):
        yield Acquire(res)
        yield Delay(d)
        yield Release(res)

    for d in delays:
        eng.spawn(contender(d))
    assert eng.run() == sum(delays)


@settings(max_examples=30, deadline=None)
@given(
    capacity=st.integers(1, 8),
    holds=st.lists(st.integers(1, 100), min_size=1, max_size=24),
)
def test_capacity_k_matches_greedy_schedule(capacity, holds):
    """A capacity-k FIFO resource behaves like k greedy machines fed in
    arrival order (each grant goes to the earliest-free unit)."""
    eng = Engine()
    res = Resource("pool", capacity)

    def contender(d):
        yield Acquire(res)
        yield Delay(d)
        yield Release(res)

    for d in holds:
        eng.spawn(contender(d))
    measured = eng.run()

    machines = [0] * capacity
    for d in holds:
        earliest = heapq.nsmallest(1, machines)[0]
        machines[machines.index(earliest)] = earliest + d
    assert measured == max(machines)


@settings(max_examples=30, deadline=None)
@given(
    tree=st.recursive(
        st.integers(1, 50),
        lambda children: st.lists(children, min_size=1, max_size=3),
        max_leaves=12,
    )
)
def test_spawn_join_trees_compute_critical_path(tree):
    """A random fork/join tree finishes at its critical-path length."""
    eng = Engine()

    def expected(node):
        if isinstance(node, int):
            return node
        return max(expected(child) for child in node)

    def proc(node):
        if isinstance(node, int):
            yield Delay(node)
            return
        children = []
        for child in node:
            p = yield Spawn(proc(child), "child")
            children.append(p)
        for p in children:
            yield Join(p)

    eng.spawn(proc(tree))
    assert eng.run() == expected(tree)


@settings(max_examples=20, deadline=None)
@given(
    seed_delays=st.lists(st.integers(0, 500), min_size=2, max_size=10),
)
def test_runs_are_bit_identical(seed_delays):
    """The same program produces the same event count and final time."""

    def build():
        eng = Engine()
        res = Resource("r", 2)

        def worker(d):
            yield Acquire(res)
            yield Delay(d)
            yield Release(res)

        def main():
            procs = []
            for i, d in enumerate(seed_delays):
                p = yield Spawn(worker(d), f"w{i}")
                procs.append(p)
            for p in procs:
                yield Join(p)

        eng.spawn(main())
        final = eng.run()
        return final, eng.events_dispatched

    assert build() == build()
