"""Differential suite: the fast engine against the reference oracle.

``engine_mode="fast"`` (docs/engine.md) is only allowed to change
wall-clock time.  Every test here runs the same configuration under both
event cores and demands byte-identical observables — RunResult fields,
full event traces, final virtual clocks, dispatch counts, serialized
sweeps — including under seeded schedule fuzzing and on the seeded-bug
``broken-*`` mutants (where the *failure* must be identical too).

Allocation names carry per-strategy-instance uids (``g_mutex#3``); two
fresh instances of one strategy differ only in that counter, so
snapshots normalize ``#<digits>`` to ``#N`` before comparing.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Any, Optional, Tuple

import pytest

from repro.algorithms import MeanMicrobench
from repro.harness import experiments
from repro.harness.runner import run
from repro.sanitize import ScheduleFuzzer, derive_seeds
from repro.simcore import use_engine_mode

_UID = re.compile(r"#\d+")

STRATEGIES = [
    "cpu-explicit",
    "cpu-implicit",
    "gpu-simple",
    "gpu-simple-reset",
    "gpu-tree-2",
    "gpu-tree-3",
    "gpu-lockfree",
    "gpu-lockfree-serial",
    "gpu-lockfree-detailed",
]

#: seeded-bug fixtures (repro.sanitize.mutants): one deadlock, one
#: premature release, one divergence — the failure modes must match too.
MUTANTS = [
    "broken-lockfree-noscatter",
    "broken-simple-undercount",
    "broken-simple-skipround",
]

#: device-mode strategies exercised under the schedule fuzzer (the
#: fuzzer permutes same-time ordering, which only they are sensitive to).
FUZZED = ["gpu-simple", "gpu-simple-reset", "gpu-tree-2", "gpu-lockfree",
          "gpu-lockfree-detailed"]


def _norm(obj: Any) -> Any:
    """Normalize strategy-instance uids (``#7`` -> ``#N``) recursively."""
    if isinstance(obj, str):
        return _UID.sub("#N", obj)
    if isinstance(obj, tuple):
        return tuple(_norm(o) for o in obj)
    if isinstance(obj, list):
        return [_norm(o) for o in obj]
    if isinstance(obj, dict):
        return {_norm(k): _norm(v) for k, v in obj.items()}
    return obj


def _snapshot(
    strategy: str,
    mode: str,
    rounds: int = 4,
    blocks: int = 6,
    seed: Optional[int] = None,
    jitter_pct: float = 0.0,
) -> Tuple[Any, ...]:
    """Every observable of one run, normalized, under ``mode``.

    A failing run snapshots as ``("error", type, normalized message)`` —
    the mutants must fail *identically*, not just both fail.
    """
    fuzzer = ScheduleFuzzer(seed) if seed is not None else None
    try:
        result = run(
            MeanMicrobench(rounds=rounds),
            strategy,
            num_blocks=blocks,
            keep_device=True,
            fuzzer=fuzzer,
            jitter_pct=jitter_pct,
            jitter_seed=3,
            engine_mode=mode,
        )
    except Exception as exc:  # noqa: BLE001 - outcome equality is the test
        return ("error", type(exc).__name__, _norm(str(exc)))
    fields = {
        f.name: getattr(result, f.name)
        for f in dataclasses.fields(result)
        if f.name != "device"
    }
    device = result.device
    assert device is not None
    # trace.digest() is deliberately absent: it hashes raw spans, and
    # the two runs' allocation names differ by the instance uid this
    # function normalizes away.  to_tuples() *is* the full trace.
    return _norm(
        (
            "ok",
            fields,
            device.trace.to_tuples(),
            device.engine.now,
            device.engine.events_dispatched,
        )
    )


# ---------------------------------------------------------------------------
# Every strategy, both modes
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("strategy", STRATEGIES)
def test_strategy_bit_identical(strategy):
    assert _snapshot(strategy, "reference") == _snapshot(strategy, "fast")


@pytest.mark.parametrize("strategy", MUTANTS)
def test_mutant_outcome_identical(strategy):
    """Seeded bugs fail the same way under both engines.

    The deadlock mutant must name the same blocked processes with the
    same wait reasons; the premature-release mutant must report the same
    violation count; the divergence mutant must starve identically.
    """
    # 30% timing jitter skews block arrivals — the condition the
    # undercount mutant needs to actually open the barrier early (its
    # docstring: "under skewed block timing").
    ref = _snapshot(strategy, "reference", jitter_pct=30.0)
    fast = _snapshot(strategy, "fast", jitter_pct=30.0)
    assert ref == fast
    if strategy == "broken-lockfree-noscatter":
        assert ref[0] == "error" and ref[1] == "DeadlockError"
    if strategy == "broken-simple-undercount":
        # Completes, but the race monitor must have caught the early
        # opens — and both engines must count them identically.
        assert ref[0] == "ok" and ref[1]["violations"] > 0


# ---------------------------------------------------------------------------
# Seeded schedule fuzzing (>= 50 seeds)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("case", range(50))
def test_fuzzed_schedule_bit_identical(case):
    """Adversarial same-time interleavings stay bit-identical.

    The fuzzer's tiebreak PRNG is consumed once per scheduled event, so
    this also proves the fast engine draws exactly as often, in exactly
    the reference order — one extra or missing draw desynchronizes the
    stream and diverges the schedule immediately.
    """
    seed = derive_seeds(20250807, 50)[case]
    strategy = FUZZED[case % len(FUZZED)]
    ref = _snapshot(strategy, "reference", rounds=3, seed=seed)
    fast = _snapshot(strategy, "fast", rounds=3, seed=seed)
    assert ref == fast


@pytest.mark.parametrize("strategy", MUTANTS)
@pytest.mark.parametrize("seed", [11, 97])
def test_fuzzed_mutant_outcome_identical(strategy, seed):
    ref = _snapshot(strategy, "reference", rounds=3, seed=seed)
    fast = _snapshot(strategy, "fast", rounds=3, seed=seed)
    assert ref == fast


# ---------------------------------------------------------------------------
# Experiment drivers (reduced grids), serialized-bytes equality
# ---------------------------------------------------------------------------

def _driver_json(driver, mode, **kwargs):
    with use_engine_mode(mode):
        return driver(**kwargs).to_json()


def test_fig11_driver_byte_identical():
    kwargs = {"rounds": 10, "blocks": [2, 5, 8]}
    assert _driver_json(experiments.fig11, "reference", **kwargs) == _driver_json(
        experiments.fig11, "fast", **kwargs
    )


@pytest.mark.parametrize("algorithm", ["fft", "bitonic"])
def test_fig13_fig14_driver_byte_identical(algorithm):
    # Figs. 13 and 14 render the same sweep two ways; one sweep
    # comparison covers both drivers.
    kwargs = {"algorithm_name": algorithm, "blocks": [9, 12]}
    assert _driver_json(experiments.fig13, "reference", **kwargs) == _driver_json(
        experiments.fig13, "fast", **kwargs
    )


def test_fig15_driver_identical():
    kwargs = {"num_blocks": 6, "algorithms": ("bitonic",)}
    with use_engine_mode("reference"):
        ref = experiments.fig15(**kwargs)
    with use_engine_mode("fast"):
        fast = experiments.fig15(**kwargs)
    assert ref == fast
