"""Unit tests for the effect dataclasses themselves."""

import pytest

from repro.simcore import Delay, Signal, WaitUntil
from repro.simcore.effects import Acquire, Fire, Join, Release, Spawn
from repro.simcore.resource import Resource


def test_delay_is_frozen_and_validated():
    d = Delay(5)
    with pytest.raises(Exception):
        d.ns = 10  # type: ignore[misc]
    with pytest.raises(ValueError):
        Delay(-0.5)
    assert Delay(0).ns == 0


def test_wait_until_carries_reason():
    sig = Signal("s")
    w = WaitUntil(sig, lambda: True, "my reason")
    assert w.reason == "my reason"
    assert w.signal is sig


def test_acquire_release_reference_resource():
    res = Resource("r")
    assert Acquire(res).resource is res
    assert Release(res).resource is res
    assert Acquire(res).reason == "acquire"


def test_spawn_default_name():
    gen = iter(())
    s = Spawn(gen)  # type: ignore[arg-type]
    assert s.name == "proc"
    assert s.generator is gen


def test_fire_payload_defaults_none():
    sig = Signal("s")
    f = Fire(sig)
    assert f.payload is None


def test_join_reason_default():
    class FakeProcess:
        pass

    j = Join(FakeProcess())  # type: ignore[arg-type]
    assert j.reason == "join"
