"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import DeadlockError, ProcessError, SimulationError
from repro.simcore import (
    Acquire,
    Delay,
    Engine,
    Fire,
    Join,
    ProcessState,
    Release,
    Resource,
    Signal,
    Spawn,
    WaitUntil,
)


def test_delay_advances_time():
    eng = Engine()

    def proc():
        yield Delay(42)
        return eng.now

    p = eng.spawn(proc())
    eng.run()
    assert p.result == 42
    assert eng.now == 42


def test_zero_delay_is_legal():
    eng = Engine()

    def proc():
        yield Delay(0)
        yield Delay(0)

    eng.spawn(proc())
    assert eng.run() == 0


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Delay(-1)


def test_fractional_delay_rounds():
    eng = Engine()

    def proc():
        yield Delay(1.6)

    eng.spawn(proc())
    assert eng.run() == 2


def test_spawn_with_initial_delay():
    eng = Engine()
    times = []

    def proc():
        times.append(eng.now)
        yield Delay(1)

    eng.spawn(proc(), delay=10)
    eng.run()
    assert times == [10]


def test_processes_interleave_deterministically():
    eng = Engine()
    order = []

    def proc(name, step):
        for i in range(3):
            yield Delay(step)
            order.append((name, eng.now))

    eng.spawn(proc("a", 10))
    eng.spawn(proc("b", 15))
    eng.run()
    # At t=30 both wake; b's event was scheduled earlier (t=15) so it runs first.
    assert order == [
        ("a", 10),
        ("b", 15),
        ("a", 20),
        ("b", 30),
        ("a", 30),
        ("b", 45),
    ]


def test_same_time_events_fifo():
    eng = Engine()
    order = []

    def proc(name):
        yield Delay(5)
        order.append(name)

    for name in "abcde":
        eng.spawn(proc(name))
    eng.run()
    assert order == list("abcde")


def test_process_return_value_via_join():
    eng = Engine()

    def child():
        yield Delay(7)
        return "payload"

    def parent():
        c = yield Spawn(child(), "child")
        result = yield Join(c)
        return result

    p = eng.spawn(parent())
    eng.run()
    assert p.result == "payload"


def test_join_on_finished_process_is_immediate():
    eng = Engine()

    def child():
        yield Delay(1)
        return 99

    def parent(c):
        yield Delay(50)
        got = yield Join(c)
        assert eng.now == 50
        return got

    c = eng.spawn(child())
    p = eng.spawn(parent(c))
    eng.run()
    assert p.result == 99


def test_multiple_joiners_all_wake():
    eng = Engine()
    results = []

    def child():
        yield Delay(10)
        return "x"

    def joiner(c):
        got = yield Join(c)
        results.append((eng.now, got))

    c = eng.spawn(child())
    for _ in range(3):
        eng.spawn(joiner(c))
    eng.run()
    assert results == [(10, "x")] * 3


def test_wait_until_immediate_when_predicate_true():
    eng = Engine()
    sig = Signal("s")

    def proc():
        polls = yield WaitUntil(sig, lambda: True, "always")
        return (eng.now, polls)

    p = eng.spawn(proc())
    eng.run()
    assert p.result == (0, 0)


def test_wait_until_wakes_on_fire():
    eng = Engine()
    sig = Signal("s")
    box = {"ready": False}

    def waiter():
        polls = yield WaitUntil(sig, lambda: box["ready"], "box ready")
        return (eng.now, polls)

    def firer():
        yield Delay(5)
        yield Fire(sig)  # predicate false: waiter polls but stays
        yield Delay(5)
        box["ready"] = True
        yield Fire(sig)

    w = eng.spawn(waiter())
    eng.spawn(firer())
    eng.run()
    assert w.result == (10, 2)  # woke at t=10 after 2 polls


def test_fire_wakes_only_matching_predicates():
    eng = Engine()
    sig = Signal("s")
    box = {"n": 0}
    woken = []

    def waiter(threshold):
        yield WaitUntil(sig, lambda t=threshold: box["n"] >= t, f">={threshold}")
        woken.append((threshold, eng.now))

    def driver():
        for _ in range(3):
            yield Delay(10)
            box["n"] += 1
            yield Fire(sig)

    eng.spawn(waiter(1))
    eng.spawn(waiter(2))
    eng.spawn(waiter(3))
    eng.spawn(driver())
    eng.run()
    assert woken == [(1, 10), (2, 20), (3, 30)]


def test_resource_fifo_serialization():
    eng = Engine()
    res = Resource("unit", capacity=1)
    order = []

    def contender(i):
        queued = yield Acquire(res)
        order.append((i, eng.now, queued))
        yield Delay(10)
        yield Release(res)

    for i in range(4):
        eng.spawn(contender(i))
    eng.run()
    assert order == [(0, 0, 0), (1, 10, 10), (2, 20, 20), (3, 30, 30)]


def test_resource_capacity_two_allows_two_holders():
    eng = Engine()
    res = Resource("pair", capacity=2)
    grants = []

    def contender(i):
        yield Acquire(res)
        grants.append((i, eng.now))
        yield Delay(10)
        yield Release(res)

    for i in range(4):
        eng.spawn(contender(i))
    eng.run()
    assert grants == [(0, 0), (1, 0), (2, 10), (3, 10)]


def test_release_without_acquire_raises():
    eng = Engine()
    res = Resource("unit")

    def bad():
        yield Release(res)

    eng.spawn(bad())
    with pytest.raises(SimulationError):
        eng.run()


def test_resource_capacity_validation():
    with pytest.raises(SimulationError):
        Resource("bad", capacity=0)


def test_deadlock_detection_names_blocked_processes():
    eng = Engine()
    sig = Signal("never")

    def stuck(i):
        yield WaitUntil(sig, lambda: False, f"stuck-{i}")

    eng.spawn(stuck(0), name="p0")
    eng.spawn(stuck(1), name="p1")
    with pytest.raises(DeadlockError) as exc:
        eng.run()
    names = [name for name, _reason in exc.value.blocked]
    assert names == ["p0", "p1"]


def test_deadlock_on_unreleased_resource():
    eng = Engine()
    res = Resource("unit")

    def holder():
        yield Acquire(res)
        yield Delay(1)  # never releases

    def waiter():
        yield Acquire(res)

    eng.spawn(holder(), name="holder")
    eng.spawn(waiter(), name="waiter")
    with pytest.raises(DeadlockError) as exc:
        eng.run()
    assert exc.value.blocked == [("waiter", "acquire (resource 'unit')")]


def test_process_exception_propagates_with_name():
    eng = Engine()

    def boom():
        yield Delay(1)
        raise ValueError("kapow")

    eng.spawn(boom(), name="bomb")
    with pytest.raises(ProcessError, match="bomb.*kapow"):
        eng.run()


def test_yielding_non_effect_raises():
    eng = Engine()

    def bad():
        yield 42

    eng.spawn(bad(), name="bad")
    with pytest.raises(ProcessError, match="non-effect"):
        eng.run()


def test_spawn_non_generator_raises():
    eng = Engine()
    with pytest.raises(ProcessError):
        eng.spawn(lambda: None)  # type: ignore[arg-type]


def test_run_until_horizon_stops_early():
    eng = Engine()

    def proc():
        yield Delay(100)

    eng.spawn(proc())
    assert eng.run(until=50) == 50
    # remaining work still completes on a follow-up run
    assert eng.run() == 100


def test_run_not_reentrant():
    eng = Engine()
    errors = []

    def proc():
        try:
            eng.run()
        except SimulationError as exc:
            errors.append(exc)
        yield Delay(1)

    eng.spawn(proc())
    eng.run()
    assert len(errors) == 1


def test_max_events_guard():
    eng = Engine(max_events=10)

    def spinner():
        while True:
            yield Delay(1)

    eng.spawn(spinner())
    with pytest.raises(SimulationError, match="max_events"):
        eng.run()


def test_nested_generators_compose_with_yield_from():
    eng = Engine()

    def inner():
        yield Delay(5)
        return "inner-done"

    def outer():
        result = yield from inner()
        yield Delay(5)
        return result

    p = eng.spawn(outer())
    eng.run()
    assert p.result == "inner-done"
    assert eng.now == 10


def test_process_state_transitions():
    eng = Engine()
    sig = Signal("s")

    def waiter():
        yield WaitUntil(sig, lambda: sig.fire_count > 0, "fired once")

    def firer():
        yield Delay(1)
        yield Fire(sig)

    w = eng.spawn(waiter())
    assert w.state == ProcessState.RUNNING
    eng.spawn(firer())
    eng.run()
    assert w.state == ProcessState.DONE
    assert not w.alive
    assert w.finished_at == 1


def test_signal_waiter_introspection():
    eng = Engine()
    sig = Signal("s")

    def waiter():
        yield WaitUntil(sig, lambda: False, "forever")

    eng.spawn(waiter(), name="w")
    with pytest.raises(DeadlockError):
        eng.run()
    assert sig.waiter_count == 1
    assert sig.waiting_processes() == [("w", "forever")]


def test_events_dispatched_counter():
    eng = Engine()

    def proc():
        yield Delay(1)
        yield Delay(1)

    eng.spawn(proc())
    eng.run()
    assert eng.events_dispatched == 3  # initial resume + two delays


def test_release_of_resource_held_by_another_raises():
    """Releasing someone else's unit is a protocol error, not silent."""
    eng = Engine()
    res = Resource("unit")

    def holder():
        yield Acquire(res)
        yield Delay(100)
        yield Release(res)

    def thief():
        yield Delay(10)
        yield Release(res)  # held by holder, not us

    eng.spawn(holder(), name="holder")
    eng.spawn(thief(), name="thief")
    with pytest.raises(ProcessError, match="thief.*does not hold"):
        eng.run()


def test_double_release_raises():
    eng = Engine()
    res = Resource("unit")

    def sloppy():
        yield Acquire(res)
        yield Release(res)
        yield Release(res)

    eng.spawn(sloppy(), name="sloppy")
    with pytest.raises(ProcessError, match="does not hold"):
        eng.run()


def test_cancelled_wakeups_do_not_inflate_final_time():
    """A dead process's future wakeup must not drag the clock forward."""
    eng = Engine()

    def sleeper():
        yield Delay(1_000_000)

    s = eng.spawn(sleeper())

    def killer():
        yield Delay(10)
        eng.cancel(s, "not needed")

    eng.spawn(killer())
    assert eng.run() == 10  # not 1_000_000


def test_cancelled_wakeup_beyond_horizon_does_not_pause_run():
    """A dead entry past the horizon is skipped, not treated as progress."""
    eng = Engine()
    done = []

    def sleeper():
        yield Delay(1_000_000)

    def worker():
        yield Delay(5)
        done.append(eng.now)

    s = eng.spawn(sleeper())
    eng.cancel(s, "immediately")
    eng.spawn(worker())
    assert eng.run(until=100) == 5
    assert done == [5]


def test_blocked_processes_lists_parked_only():
    eng = Engine()
    sig = Signal("s")

    def waiter():
        yield WaitUntil(sig, lambda: False, "the flag")

    def sleeper():
        yield Delay(500)

    eng.spawn(waiter(), name="w")
    eng.spawn(sleeper(), name="zz")
    eng.run(until=100)
    blocked = eng.blocked_processes
    assert len(blocked) == 1
    name, reason = blocked[0]
    assert name == "w" and "the flag" in reason


def test_pending_events_counts_live_wakeups_and_ignores():
    eng = Engine()
    sig = Signal("s")

    def waiter():
        yield WaitUntil(sig, lambda: False, "forever")

    def sleeper():
        yield Delay(500)

    eng.spawn(waiter(), name="w")
    zz = eng.spawn(sleeper(), name="zz")
    eng.run(until=100)
    # The sleeper's 500 ns wakeup is pending; the waiter has none.
    assert eng.pending_events() == 1
    assert eng.pending_events(ignore=(zz,)) == 0
