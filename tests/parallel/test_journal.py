"""Tests for the write-ahead run journal and its run-id scheme."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import JournalError
from repro.parallel import (
    JOURNAL_SCHEMA_VERSION,
    JournalEntry,
    RunJournal,
    run_id_for,
)

PAYLOADS = [{"seed": s, "num_blocks": 4} for s in range(3)]


@pytest.fixture
def journal(tmp_path):
    rid = run_id_for("run-total", PAYLOADS)
    return RunJournal(tmp_path, rid)


def write_batch(journal, entries):
    journal.start(worker="run-total", total=len(PAYLOADS), fresh=True)
    for entry in entries:
        journal.record(entry)
    journal.close()


# -- run-id -----------------------------------------------------------------


def test_run_id_is_deterministic():
    assert run_id_for("run-total", PAYLOADS) == run_id_for(
        "run-total", list(PAYLOADS)
    )


def test_run_id_ignores_dict_construction_order():
    flipped = [{"num_blocks": 4, "seed": s} for s in range(3)]
    assert run_id_for("run-total", PAYLOADS) == run_id_for("run-total", flipped)


def test_run_id_sensitive_to_every_input():
    base = run_id_for("run-total", PAYLOADS)
    assert run_id_for("run-result", PAYLOADS) != base
    tweaked = [dict(p) for p in PAYLOADS]
    tweaked[1]["seed"] = 99
    assert run_id_for("run-total", tweaked) != base
    assert run_id_for("run-total", PAYLOADS[:-1]) != base


def test_run_id_shape():
    rid = run_id_for("run-total", [])
    assert len(rid) == 16
    assert all(c in "0123456789abcdef" for c in rid)


# -- roundtrip --------------------------------------------------------------


def test_header_and_entries_roundtrip(journal):
    write_batch(
        journal,
        [
            JournalEntry(0, "ok", 1234, retries=0),
            JournalEntry(2, "poison", None, error="killed twice", retries=2),
        ],
    )
    header, entries = journal.load(worker="run-total", total=len(PAYLOADS))
    assert header["journal-schema"] == JOURNAL_SCHEMA_VERSION
    assert header["run-id"] == journal.run_id
    assert set(entries) == {0, 2}
    assert entries[0] == JournalEntry(0, "ok", 1234)
    assert entries[2].status == "poison"
    assert entries[2].error == "killed twice"
    assert entries[2].retries == 2


def test_duplicate_index_last_wins(journal):
    write_batch(
        journal,
        [JournalEntry(1, "ok", 10), JournalEntry(1, "ok", 20, retries=1)],
    )
    _, entries = journal.load()
    assert entries[1].value == 20
    assert entries[1].retries == 1


def test_resume_append_preserves_earlier_entries(journal):
    write_batch(journal, [JournalEntry(0, "ok", 1)])
    journal.start(worker="run-total", total=len(PAYLOADS), fresh=False)
    journal.record(JournalEntry(1, "ok", 2))
    journal.close()
    _, entries = journal.load(worker="run-total", total=len(PAYLOADS))
    assert {i: e.value for i, e in entries.items()} == {0: 1, 1: 2}


# -- torn tails -------------------------------------------------------------


def test_torn_trailing_line_truncates_replay(journal):
    write_batch(journal, [JournalEntry(0, "ok", 1), JournalEntry(1, "ok", 2)])
    with open(journal.path, "a", encoding="utf-8") as handle:
        handle.write('{"index": 2, "status": "ok", "val')  # crash mid-append
    _, entries = journal.load()
    assert set(entries) == {0, 1}


def test_garbage_mid_file_truncates_from_there(journal):
    write_batch(journal, [JournalEntry(0, "ok", 1)])
    with open(journal.path, "a", encoding="utf-8") as handle:
        handle.write("not json at all\n")
        handle.write(json.dumps({"index": 1, "status": "ok", "value": 2}) + "\n")
    _, entries = journal.load()
    assert set(entries) == {0}  # nothing after the tear is trusted


def test_malformed_entry_shape_stops_replay(journal):
    write_batch(journal, [JournalEntry(0, "ok", 1)])
    with open(journal.path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps({"index": "one", "status": "ok"}) + "\n")
    _, entries = journal.load()
    assert set(entries) == {0}


# -- typed failures ---------------------------------------------------------


def test_missing_file_is_typed(journal):
    assert not journal.exists()
    with pytest.raises(JournalError, match="cannot read"):
        journal.load()


def test_empty_file_is_typed(journal):
    journal.path.parent.mkdir(parents=True)
    journal.path.write_text("")
    with pytest.raises(JournalError, match="empty"):
        journal.load()


def test_unreadable_header_is_typed(journal):
    journal.path.parent.mkdir(parents=True)
    journal.path.write_text("{ not json\n")
    with pytest.raises(JournalError, match="unreadable header"):
        journal.load()


def test_schema_mismatch_is_typed(journal):
    write_batch(journal, [])
    lines = journal.path.read_text().splitlines()
    header = json.loads(lines[0])
    header["journal-schema"] = JOURNAL_SCHEMA_VERSION + 1
    journal.path.write_text(json.dumps(header) + "\n")
    with pytest.raises(JournalError, match="schema"):
        journal.load()


@pytest.mark.parametrize(
    "kwargs, fragment",
    [
        ({"worker": "run-result"}, "worker"),
        ({"total": 99}, "total"),
    ],
)
def test_header_mismatch_is_typed(journal, kwargs, fragment):
    write_batch(journal, [])
    with pytest.raises(JournalError, match=fragment):
        journal.load(**kwargs)


def test_run_id_mismatch_is_typed(journal, tmp_path):
    write_batch(journal, [])
    other = RunJournal(tmp_path, "0" * 16)
    (other.path.parent).mkdir(parents=True)
    other.path.write_text(journal.path.read_text())
    with pytest.raises(JournalError, match="run-id"):
        other.load()


def test_record_before_start_is_typed(journal):
    with pytest.raises(JournalError, match="not open"):
        journal.record(JournalEntry(0, "ok", 1))


def test_close_is_idempotent(journal):
    write_batch(journal, [JournalEntry(0, "ok", 1)])
    journal.close()
    journal.close()


# -- duplicate records (lease-requeue overlap) ------------------------------


@given(
    writes=st.lists(
        st.tuples(st.integers(min_value=0, max_value=5), st.integers()),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=50, deadline=None)
def test_duplicate_records_are_last_write_wins(tmp_path_factory, writes):
    """Under lease-based recovery two workers can journal the same task;
    replay must keep the *last* record per index and count (never hide)
    the tolerated duplicates."""
    root = tmp_path_factory.mktemp("journal")
    journal = RunJournal(root, run_id_for("run-total", PAYLOADS))
    journal.start(worker="run-total", total=len(PAYLOADS), fresh=True)
    for index, value in writes:
        journal.record(JournalEntry(index=index, status="ok", value=value))
    journal.close()

    _, entries = journal.load()
    expected = {index: value for index, value in writes}  # dict = last wins
    assert {i: e.value for i, e in entries.items()} == expected
    assert journal.last_load_duplicates == len(writes) - len(expected)


def test_duplicate_tolerance_is_logged(journal, caplog):
    import logging

    journal.start(worker="run-total", total=len(PAYLOADS), fresh=True)
    journal.record(JournalEntry(index=0, status="ok", value=1))
    journal.record(JournalEntry(index=0, status="ok", value=2))
    journal.close()
    with caplog.at_level(logging.WARNING, logger="repro.parallel.journal"):
        _, entries = journal.load()
    assert entries[0].value == 2
    assert journal.last_load_duplicates == 1
    assert any("1 duplicate task record" in r.message for r in caplog.records)
    # A clean reload of a single-writer journal resets the counter.
    journal.start(worker="run-total", total=len(PAYLOADS), fresh=True)
    journal.record(JournalEntry(index=0, status="ok", value=3))
    journal.close()
    journal.load()
    assert journal.last_load_duplicates == 0


# -- durability (fsync-before-durable, multibyte tears) ---------------------


def test_every_record_is_fsynced_before_returning(journal, monkeypatch):
    """Write-ahead discipline: ``record`` must not return before the
    bytes are fsync'd — one fsync (at least) per record."""
    import repro.parallel.journal as journal_mod

    synced = []
    real_fsync = journal_mod.os.fsync
    monkeypatch.setattr(
        journal_mod.os, "fsync", lambda fd: synced.append(fd) or real_fsync(fd)
    )
    journal.start(worker="run-total", total=len(PAYLOADS), fresh=True)
    synced.clear()  # ignore the header's own flush
    for i in range(4):
        before = len(synced)
        journal.record(JournalEntry(i, "ok", i))
        assert len(synced) > before  # durable before record() returned
    journal.close()


@given(cut=st.integers(min_value=1, max_value=40))
@settings(max_examples=50, deadline=None)
def test_torn_tail_may_split_a_multibyte_sequence(tmp_path_factory, cut):
    """A crash mid-append can cut anywhere in the byte stream — including
    the middle of a UTF-8 multi-byte sequence, leaving an undecodable
    tail.  Replay must keep every fully recorded entry regardless of the
    cut position."""
    root = tmp_path_factory.mktemp("journal")
    journal = RunJournal(root, run_id_for("run-total", PAYLOADS))
    write_batch(
        journal,
        [JournalEntry(0, "ok", "héllo"), JournalEntry(1, "ok", "wörld")],
    )
    torn = json.dumps(
        {"index": 2, "status": "ok", "value": "über-naïve-żółć"},
        ensure_ascii=False,
    ).encode("utf-8")
    with open(journal.path, "ab") as handle:
        handle.write(torn[: min(cut, len(torn) - 1)])
    _, entries = journal.load()
    assert {i: e.value for i, e in entries.items()} == {0: "héllo", 1: "wörld"}


def test_resume_truncates_the_torn_tail_before_appending(journal, caplog):
    """Re-opening after a crash must physically drop the torn bytes so
    the next append starts on a clean line — otherwise the new record
    would fuse with the tear and be lost too."""
    import logging

    write_batch(journal, [JournalEntry(0, "ok", 1)])
    # Crash mid-append, cutting inside the "ö" of a multibyte payload.
    torn = json.dumps(
        {"index": 1, "status": "ok", "value": "wör"}, ensure_ascii=False
    ).encode("utf-8")
    with open(journal.path, "ab") as handle:
        handle.write(torn[:24])
    with caplog.at_level(logging.WARNING, logger="repro.parallel.journal"):
        journal.start(worker="run-total", total=len(PAYLOADS), fresh=False)
    journal.record(JournalEntry(2, "ok", 3))
    journal.close()
    raw = journal.path.read_bytes()
    assert torn[:24] not in raw  # the tear is gone from disk
    _, entries = journal.load()
    assert {i: e.value for i, e in entries.items()} == {0: 1, 2: 3}
    assert any("torn" in r.message.lower() for r in caplog.records)
