"""Tests for the content-addressed result cache."""

import json

import pytest

from repro.errors import ConfigError, ExperimentError
from repro.parallel import CACHE_SCHEMA_VERSION, ResultCache, cache_key
from repro.parallel.cache import DEFAULT_CACHE_DIR


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def test_key_is_stable_and_order_insensitive():
    a = cache_key("run-total", {"x": 1, "y": 2})
    b = cache_key("run-total", {"y": 2, "x": 1})
    assert a == b
    assert len(a) == 64


def test_key_changes_with_any_ingredient():
    base = cache_key("run-total", {"seed": 1})
    assert cache_key("run-total", {"seed": 2}) != base
    assert cache_key("chaos-plan", {"seed": 1}) != base


def test_miss_then_hit(cache):
    key = cache.key("run-total", {"seed": 7})
    hit, _ = cache.get(key)
    assert not hit
    cache.put(key, 1234)
    hit, value = cache.get(key)
    assert hit and value == 1234
    assert (cache.hits, cache.misses) == (1, 1)


def test_unserializable_value_rejected(cache):
    key = cache.key("run-total", {"seed": 7})
    with pytest.raises(ExperimentError, match="cannot serialize"):
        cache.put(key, object())


def test_corrupt_entry_is_a_miss(cache):
    key = cache.key("run-total", {"seed": 7})
    path = cache.put(key, 1234)
    path.write_text("{ not json")
    hit, _ = cache.get(key)
    assert not hit
    cache.put(key, 1234)  # overwrites the rot
    assert cache.get(key) == (True, 1234)


def test_corrupt_entry_is_quarantined(cache):
    key = cache.key("run-total", {"seed": 7})
    path = cache.put(key, 1234)
    path.write_text("{ not json")
    assert cache.get(key) == (False, None)
    # The rotten file moved aside so the decode failure cannot recur.
    assert not path.exists()
    corpse = path.with_suffix(".corrupt")
    assert corpse.read_text() == "{ not json"
    assert cache.corrupt == 1
    assert cache.get(key) == (False, None)  # plain miss, no re-quarantine
    assert cache.corrupt == 1


def test_quarantine_is_counted_and_cleared(cache):
    key = cache.key("run-total", {"seed": 7})
    path = cache.put(key, 1234)
    path.write_text("{ not json")
    cache.get(key)
    stats = cache.stats()
    assert stats.entries == 0
    assert stats.corrupt == 1
    assert "1 corrupt" in stats.render()
    assert cache.clear() == 0  # corpses are removed but not counted
    assert cache.stats().corrupt == 0
    assert not path.with_suffix(".corrupt").exists()


def test_schema_mismatch_is_not_quarantined(cache):
    key = cache.key("run-total", {"seed": 7})
    path = cache.put(key, 1234)
    entry = json.loads(path.read_text())
    entry["cache-schema"] = CACHE_SCHEMA_VERSION + 1
    path.write_text(json.dumps(entry))
    assert cache.get(key) == (False, None)
    assert path.exists()  # decodable files stay put, whatever they say
    assert cache.corrupt == 0


def test_schema_mismatch_is_a_miss(cache):
    key = cache.key("run-total", {"seed": 7})
    path = cache.put(key, 1234)
    entry = json.loads(path.read_text())
    entry["cache-schema"] = CACHE_SCHEMA_VERSION + 1
    path.write_text(json.dumps(entry))
    hit, _ = cache.get(key)
    assert not hit


def test_wrong_key_in_entry_is_a_miss(cache):
    key = cache.key("run-total", {"seed": 7})
    path = cache.put(key, 1234)
    entry = json.loads(path.read_text())
    entry["key"] = "0" * 64
    path.write_text(json.dumps(entry))
    assert cache.get(key) == (False, None)


def test_malformed_key_rejected(cache):
    with pytest.raises(ConfigError, match="malformed"):
        cache.get("ab")


def test_stats_and_clear(cache):
    assert cache.stats().entries == 0
    for seed in range(5):
        cache.put(cache.key("run-total", {"seed": seed}), seed)
    stats = cache.stats()
    assert stats.entries == 5
    assert stats.bytes > 0
    assert "5 entries" in stats.render()
    assert cache.clear() == 5
    assert cache.stats().entries == 0


def test_default_location_is_under_benchmarks():
    assert str(DEFAULT_CACHE_DIR).endswith("cache")
    assert str(ResultCache().root) == str(DEFAULT_CACHE_DIR)
