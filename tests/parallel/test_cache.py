"""Tests for the content-addressed result cache."""

import json

import pytest

from repro.errors import ConfigError, ExperimentError
from repro.parallel import CACHE_SCHEMA_VERSION, ResultCache, cache_key
from repro.parallel.cache import DEFAULT_CACHE_DIR


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def test_key_is_stable_and_order_insensitive():
    a = cache_key("run-total", {"x": 1, "y": 2})
    b = cache_key("run-total", {"y": 2, "x": 1})
    assert a == b
    assert len(a) == 64


def test_key_changes_with_any_ingredient():
    base = cache_key("run-total", {"seed": 1})
    assert cache_key("run-total", {"seed": 2}) != base
    assert cache_key("chaos-plan", {"seed": 1}) != base


def test_miss_then_hit(cache):
    key = cache.key("run-total", {"seed": 7})
    hit, _ = cache.get(key)
    assert not hit
    cache.put(key, 1234)
    hit, value = cache.get(key)
    assert hit and value == 1234
    assert (cache.hits, cache.misses) == (1, 1)


def test_unserializable_value_rejected(cache):
    key = cache.key("run-total", {"seed": 7})
    with pytest.raises(ExperimentError, match="cannot serialize"):
        cache.put(key, object())


def test_corrupt_entry_is_a_miss(cache):
    key = cache.key("run-total", {"seed": 7})
    path = cache.put(key, 1234)
    path.write_text("{ not json")
    hit, _ = cache.get(key)
    assert not hit
    cache.put(key, 1234)  # overwrites the rot
    assert cache.get(key) == (True, 1234)


def test_corrupt_entry_is_quarantined(cache):
    key = cache.key("run-total", {"seed": 7})
    path = cache.put(key, 1234)
    path.write_text("{ not json")
    assert cache.get(key) == (False, None)
    # The rotten file moved aside so the decode failure cannot recur.
    assert not path.exists()
    corpse = path.with_suffix(".corrupt")
    assert corpse.read_text() == "{ not json"
    assert cache.corrupt == 1
    assert cache.get(key) == (False, None)  # plain miss, no re-quarantine
    assert cache.corrupt == 1


def test_quarantine_is_counted_and_cleared(cache):
    key = cache.key("run-total", {"seed": 7})
    path = cache.put(key, 1234)
    path.write_text("{ not json")
    cache.get(key)
    stats = cache.stats()
    assert stats.entries == 0
    assert stats.corrupt == 1
    assert "1 corrupt" in stats.render()
    assert cache.clear() == 0  # corpses are removed but not counted
    assert cache.stats().corrupt == 0
    assert not path.with_suffix(".corrupt").exists()


def test_schema_mismatch_is_not_quarantined(cache):
    key = cache.key("run-total", {"seed": 7})
    path = cache.put(key, 1234)
    entry = json.loads(path.read_text())
    entry["cache-schema"] = CACHE_SCHEMA_VERSION + 1
    path.write_text(json.dumps(entry))
    assert cache.get(key) == (False, None)
    assert path.exists()  # decodable files stay put, whatever they say
    assert cache.corrupt == 0


def test_schema_mismatch_is_a_miss(cache):
    key = cache.key("run-total", {"seed": 7})
    path = cache.put(key, 1234)
    entry = json.loads(path.read_text())
    entry["cache-schema"] = CACHE_SCHEMA_VERSION + 1
    path.write_text(json.dumps(entry))
    hit, _ = cache.get(key)
    assert not hit


def test_wrong_key_in_entry_is_a_miss(cache):
    key = cache.key("run-total", {"seed": 7})
    path = cache.put(key, 1234)
    entry = json.loads(path.read_text())
    entry["key"] = "0" * 64
    path.write_text(json.dumps(entry))
    assert cache.get(key) == (False, None)


def test_malformed_key_rejected(cache):
    with pytest.raises(ConfigError, match="malformed"):
        cache.get("ab")


def test_stats_and_clear(cache):
    assert cache.stats().entries == 0
    for seed in range(5):
        cache.put(cache.key("run-total", {"seed": seed}), seed)
    stats = cache.stats()
    assert stats.entries == 5
    assert stats.bytes > 0
    assert "5 entries" in stats.render()
    assert cache.clear() == 5
    assert cache.stats().entries == 0


def test_default_location_is_under_benchmarks():
    assert str(DEFAULT_CACHE_DIR).endswith("cache")
    assert str(ResultCache().root) == str(DEFAULT_CACHE_DIR)


# -- concurrent writers -----------------------------------------------------


def _hammer_put(root, key, value, rounds):
    """Subprocess body: re-put the same entry as fast as possible."""
    from repro.parallel import ResultCache

    cache = ResultCache(root)
    for _ in range(rounds):
        cache.put(key, value)


def test_two_process_write_race_never_tears(tmp_path):
    """Two processes hammering the same key must never expose a torn
    entry: every read during the race is either a clean hit with the
    full value or a clean miss — ``put`` goes through a unique temp
    file and an atomic rename, so a reader can't see a partial write
    (which would decode as corrupt and be quarantined)."""
    import multiprocessing

    cache = ResultCache(tmp_path / "cache")
    key = cache.key("run-total", {"seed": 7})
    # A fat value widens the torn-write window a non-atomic writer
    # would have.
    value = {"cells": list(range(20_000))}

    ctx = multiprocessing.get_context("spawn")
    writers = [
        ctx.Process(
            target=_hammer_put, args=(cache.root, key, value, 60)
        )
        for _ in range(2)
    ]
    for proc in writers:
        proc.start()
    try:
        while any(proc.is_alive() for proc in writers):
            hit, got = cache.get(key)
            if hit:
                assert got == value
    finally:
        for proc in writers:
            proc.join(timeout=60)
    assert all(proc.exitcode == 0 for proc in writers)
    # No reader ever saw rot, so nothing was quarantined...
    assert cache.corrupt == 0
    assert cache.stats().corrupt == 0
    # ...the final entry is whole, and no temp scraps were left behind.
    assert cache.get(key) == (True, value)
    assert list(cache.root.glob("*/*.tmp")) == []
