"""Tests for the deterministic fan-out executor."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError, ExecutorError
from repro.harness.experiments import GPU_STRATEGIES
from repro.parallel import Executor, ResultCache


def micro_payload(strategy, num_blocks=4, jitter_seed=0):
    return {
        "algorithm": {
            "name": "micro",
            "rounds": 2,
            "num_blocks_hint": num_blocks,
        },
        "strategy": strategy,
        "num_blocks": num_blocks,
        "jitter_pct": 10.0,
        "jitter_seed": jitter_seed,
    }


def test_unknown_worker_is_typed():
    with pytest.raises(ExecutorError, match="unknown worker") as info:
        Executor().map("no-such-worker", [{}])
    assert info.value.kind == "unknown-worker"


def test_constructor_validation():
    with pytest.raises(ConfigError):
        Executor(jobs=0)
    with pytest.raises(ConfigError):
        Executor(timeout_s=0)
    with pytest.raises(ConfigError):
        Executor(max_inflight=0)


def test_empty_batch():
    assert Executor().map("run-total", []) == []


def test_inline_results_are_totals():
    totals = Executor(jobs=1).map(
        "run-total", [micro_payload("gpu-lockfree"), micro_payload("null")]
    )
    assert len(totals) == 2
    assert all(isinstance(t, int) and t > 0 for t in totals)
    # a synchronized run costs more than its compute-only baseline
    assert totals[0] > totals[1]


@settings(max_examples=5, deadline=None)
@given(
    strategy=st.sampled_from(GPU_STRATEGIES),
    jitter_seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_parallel_equals_serial(strategy, jitter_seed):
    """The tentpole property: jobs=2 is bit-identical to jobs=1."""
    payloads = [
        micro_payload(strategy, num_blocks=n, jitter_seed=jitter_seed)
        for n in (2, 3, 4)
    ]
    serial = Executor(jobs=1).map("run-total", payloads)
    parallel = Executor(jobs=2).map("run-total", payloads)
    assert serial == parallel


def test_results_in_submission_order():
    # staggered sleeps finish out of order; results must not.
    payloads = [
        {"seconds": s, "value": i}
        for i, s in enumerate([0.2, 0.0, 0.1, 0.0])
    ]
    assert Executor(jobs=2).map("sleep", payloads) == [0, 1, 2, 3]


def test_worker_timeout_is_typed():
    ex = Executor(jobs=2, timeout_s=0.2)
    with pytest.raises(ExecutorError, match="deadline") as info:
        ex.map("sleep", [{"seconds": 30.0, "value": 1}])
    assert info.value.kind == "timeout"
    assert info.value.worker == "sleep"
    assert info.value.task_index == 0


def test_worker_failure_is_typed_inline_and_pooled():
    bad = [{"algorithm": {"name": "no-such-algo"}, "strategy": "null",
            "num_blocks": 2}]
    for jobs in (1, 2):
        with pytest.raises(ExecutorError, match="no-such-algo") as info:
            Executor(jobs=jobs).map("run-total", bad)
        assert info.value.kind == "worker"


def test_progress_callback_sees_every_task(tmp_path):
    calls = []
    cache = ResultCache(tmp_path / "cache")
    ex = Executor(jobs=1, cache=cache, progress=lambda d, t, c: calls.append((d, t, c)))
    payloads = [micro_payload("gpu-simple", num_blocks=n) for n in (2, 3)]
    ex.map("run-total", payloads)
    assert calls == [(1, 2, False), (2, 2, False)]
    calls.clear()
    ex.map("run-total", payloads)  # second pass: all cached
    assert calls == [(1, 2, True), (2, 2, True)]


def test_task_counters(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    ex = Executor(jobs=1, cache=cache)
    payloads = [micro_payload("gpu-tree-2", num_blocks=n) for n in (2, 3, 4)]
    ex.map("run-total", payloads)
    ex.map("run-total", payloads)
    assert ex.tasks_run == 3
    assert ex.tasks_cached == 3
