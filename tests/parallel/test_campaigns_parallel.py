"""Parallel chaos/sanitize campaigns must match their serial runs."""

from repro.faults.chaos import ChaosReport, chaos_campaign
from repro.parallel import Executor, ResultCache
from repro.sanitize.report import SanitizeReport
from repro.sanitize.sanitizer import sanitize_run


def test_chaos_campaign_sharded_matches_serial():
    kwargs = dict(plans=5, num_blocks=4, rounds=2, seed=123)
    serial = chaos_campaign("gpu-lockfree", **kwargs)
    parallel = chaos_campaign(
        "gpu-lockfree", executor=Executor(jobs=2), **kwargs
    )
    assert parallel.to_json() == serial.to_json()
    assert parallel.clean == serial.clean
    assert [r.outcome for r in parallel.records] == [
        r.outcome for r in serial.records
    ]


def test_chaos_report_roundtrip():
    report = chaos_campaign("gpu-simple", plans=3, num_blocks=4, rounds=2)
    again = ChaosReport.from_json(report.to_json())
    assert again.to_json() == report.to_json()
    assert again.render() == report.render()


def test_sanitize_sharded_matches_serial():
    kwargs = dict(strategy="gpu-lockfree", num_blocks=4, schedules=6, seed=99)
    serial = sanitize_run(**kwargs)
    parallel = sanitize_run(executor=Executor(jobs=2), **kwargs)
    assert parallel.to_json() == serial.to_json()
    assert parallel.schedules_run == serial.schedules_run
    assert parallel.schedules_flagged == serial.schedules_flagged
    assert parallel.barrier_events == serial.barrier_events


def test_sanitize_cached_rerun_matches(tmp_path):
    kwargs = dict(strategy="gpu-tree-2", num_blocks=4, schedules=4)
    serial = sanitize_run(**kwargs)
    cache = ResultCache(tmp_path / "cache")
    first = sanitize_run(executor=Executor(jobs=1, cache=cache), **kwargs)
    second = sanitize_run(executor=Executor(jobs=1, cache=cache), **kwargs)
    assert cache.hits == 4  # the whole second campaign came from disk
    assert first.to_json() == serial.to_json()
    assert second.to_json() == serial.to_json()


def test_sanitize_report_roundtrip():
    report = sanitize_run(strategy="gpu-lockfree", num_blocks=4, schedules=3)
    again = SanitizeReport.from_json(report.to_json())
    assert again.to_json() == report.to_json()
    assert again.render() == report.render()
