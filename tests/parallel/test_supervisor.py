"""Tests for the supervising executor: journal, resume, retry, quarantine.

The ``fragile`` and ``sleep`` diagnostic workers stand in for real
simulations so every failure mode is deterministic and fast; the final
tests run a real (tiny) fig11 sweep interrupted mid-flight and assert
the resumed result is bit-identical to an uninterrupted one — the same
equality contract ``benchmarks/bench_parallel.py`` checks for plain
parallelism.
"""

import signal

import pytest

from repro.errors import ExecutorError, InterruptedSweepError
from repro.harness.experiments import fig11
from repro.parallel import Executor, Quarantined, ResultCache, run_id_for

SLEEPERS = [{"value": v, "seconds": 0.0} for v in range(6)]


# -- journaling and resume ---------------------------------------------------


def test_journaled_batch_writes_journal(tmp_path):
    ex = Executor(journal_dir=tmp_path)
    assert ex.map("sleep", SLEEPERS) == list(range(6))
    stats = ex.last_batch
    assert stats.run_id == run_id_for("sleep", SLEEPERS)
    assert stats.total == 6
    assert stats.replayed == 0
    assert stats.resumed_from is None
    assert (tmp_path / stats.run_id / "journal.jsonl").is_file()


def test_resume_replays_bit_identical(tmp_path):
    first = Executor(journal_dir=tmp_path)
    expected = first.map("sleep", SLEEPERS)
    rid = first.last_batch.run_id

    resumed = Executor(journal_dir=tmp_path)
    assert resumed.map("sleep", SLEEPERS, resume=rid) == expected
    stats = resumed.last_batch
    assert stats.replayed == 6
    assert stats.resumed_from == rid
    assert resumed.tasks_run == 0  # nothing re-executed


def test_resume_auto_without_journal_starts_fresh(tmp_path):
    ex = Executor(journal_dir=tmp_path)
    assert ex.map("sleep", SLEEPERS, resume="auto") == list(range(6))
    assert ex.last_batch.resumed_from is None
    assert ex.last_batch.replayed == 0


def test_resume_auto_with_journal_replays(tmp_path):
    Executor(journal_dir=tmp_path).map("sleep", SLEEPERS)
    ex = Executor(journal_dir=tmp_path)
    assert ex.map("sleep", SLEEPERS, resume="auto") == list(range(6))
    assert ex.last_batch.replayed == 6


def test_resume_mismatched_run_id_is_typed(tmp_path):
    ex = Executor(journal_dir=tmp_path)
    with pytest.raises(ExecutorError, match="cannot resume") as info:
        ex.map("sleep", SLEEPERS, resume="0" * 16)
    assert info.value.kind == "resume"


def test_resume_explicit_id_without_journal_is_typed(tmp_path):
    ex = Executor(journal_dir=tmp_path)
    rid = run_id_for("sleep", SLEEPERS)
    with pytest.raises(ExecutorError, match="nothing to resume") as info:
        ex.map("sleep", SLEEPERS, resume=rid)
    assert info.value.kind == "resume"


def test_resume_without_journal_dir_uses_default(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # DEFAULT_JOURNAL_DIR is cwd-relative
    Executor(journal_dir=None).map("sleep", SLEEPERS)  # un-journaled
    ex = Executor(journal_dir=None)
    assert ex.map("sleep", SLEEPERS, resume="auto") == list(range(6))
    assert (tmp_path / "benchmarks" / "out" / "journal").is_dir()


def test_resume_composes_with_cache(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    first = Executor(cache=cache, journal_dir=tmp_path / "journal")
    first.map("sleep", SLEEPERS)
    ex = Executor(cache=cache, journal_dir=tmp_path / "journal")
    assert ex.map("sleep", SLEEPERS, resume="auto") == list(range(6))
    # replay wins over the cache: replayed results are not cache hits.
    assert ex.last_batch.replayed == 6
    assert ex.tasks_cached == 0


# -- interruption ------------------------------------------------------------


def make_tripwire(at, signum=signal.SIGINT):
    def tripwire(done, total, cached):
        if done == at:
            signal.raise_signal(signum)

    return tripwire


def test_inline_sigint_drains_and_resumes(tmp_path):
    interrupted = Executor(
        journal_dir=tmp_path, progress=make_tripwire(3)
    )
    with pytest.raises(InterruptedSweepError) as info:
        interrupted.map("sleep", SLEEPERS)
    exc = info.value
    assert exc.run_id == run_id_for("sleep", SLEEPERS)
    assert exc.signal_name == "SIGINT"
    assert exc.done == 3
    assert exc.total == 6
    assert "resume" in str(exc)

    resumed = Executor(journal_dir=tmp_path)
    assert resumed.map("sleep", SLEEPERS, resume=exc.run_id) == list(range(6))
    assert resumed.last_batch.replayed == 3
    assert resumed.tasks_run == 3  # only the remainder executed


def test_pool_sigterm_drains_and_resumes(tmp_path):
    interrupted = Executor(
        jobs=2, journal_dir=tmp_path, progress=make_tripwire(2, signal.SIGTERM)
    )
    with pytest.raises(InterruptedSweepError) as info:
        interrupted.map("sleep", SLEEPERS)
    exc = info.value
    assert exc.signal_name == "SIGTERM"
    # Everything in flight at the signal drains first (quick tasks may
    # all finish); the interrupt still surfaces so the run is resumable.
    assert 2 <= exc.done <= 6

    resumed = Executor(jobs=2, journal_dir=tmp_path)
    assert resumed.map("sleep", SLEEPERS, resume=exc.run_id) == list(range(6))
    assert resumed.last_batch.replayed == exc.done


def test_unjournaled_run_leaves_signals_alone(tmp_path):
    ex = Executor(progress=make_tripwire(2))
    with pytest.raises(KeyboardInterrupt):
        ex.map("sleep", SLEEPERS)


# -- crash recovery and poison quarantine ------------------------------------


def test_transient_worker_death_is_retried(tmp_path):
    marker = tmp_path / "died-once"
    payloads = [{"value": 0}, {"once_marker": str(marker), "value": 1}, {"value": 2}]
    ex = Executor(jobs=2)
    assert ex.map("fragile", payloads) == [0, 1, 2]
    assert marker.exists()
    assert ex.last_batch.retries >= 1
    assert ex.last_batch.quarantined == []


def test_poison_payload_raises_after_siblings_complete(tmp_path):
    payloads = [{"value": 0}, {"die": True}, {"value": 2}, {"value": 3}]
    ex = Executor(jobs=2, journal_dir=tmp_path)
    with pytest.raises(ExecutorError, match="quarantined as") as info:
        ex.map("fragile", payloads)
    exc = info.value
    assert exc.kind == "poison"
    assert exc.task_index == 1
    assert "3 task(s) completed" in str(exc)
    stats = ex.last_batch
    assert stats.quarantined == [1]

    # Every sibling reached the journal before the poison surfaced.
    resumed = Executor(jobs=2, journal_dir=tmp_path, on_poison="mark")
    results = resumed.map("fragile", payloads, resume=stats.run_id)
    assert results[0] == 0 and results[2] == 2 and results[3] == 3
    assert isinstance(results[1], Quarantined)
    assert resumed.last_batch.replayed == 4  # poison included: no re-dying
    assert resumed.tasks_run == 0


def test_poison_mark_returns_placeholder():
    payloads = [{"value": 0}, {"die": True}, {"value": 2}]
    ex = Executor(jobs=2, on_poison="mark")
    results = ex.map("fragile", payloads)
    assert results[0] == 0 and results[2] == 2
    assert results[1] == Quarantined(index=1, error=results[1].error)
    assert "poison" in results[1].error
    assert ex.last_batch.quarantined == [1]


def test_poison_threshold_respects_poison_kills():
    # With poison_kills=1 a single attributed death quarantines.
    ex = Executor(jobs=2, on_poison="mark", poison_kills=1)
    results = ex.map("fragile", [{"die": True}, {"value": 1}])
    assert isinstance(results[0], Quarantined)
    assert results[1] == 1


# -- timeouts ----------------------------------------------------------------


def test_timeout_is_retried_then_typed(tmp_path):
    payloads = [
        {"value": 0, "seconds": 0.0},
        {"value": 1, "seconds": 60.0},  # hangs far past the deadline
        {"value": 2, "seconds": 0.0},
    ]
    ex = Executor(jobs=2, timeout_s=0.3, retries=1, journal_dir=tmp_path)
    with pytest.raises(ExecutorError, match="exceeded") as info:
        ex.map("sleep", payloads)
    exc = info.value
    assert exc.kind == "timeout"
    assert exc.task_index == 1
    assert "2 attempt(s)" in str(exc)
    assert "journaled" in str(exc)

    # The quick siblings were drained into the journal; resuming with a
    # sane deadline replays them and re-runs only the hung cell.
    fixed = [dict(p, seconds=0.0) for p in payloads]
    assert Executor(jobs=2, journal_dir=tmp_path).map("sleep", fixed) == [0, 1, 2]


def test_timeout_zero_retries_fails_on_first_expiry():
    ex = Executor(jobs=2, timeout_s=0.2, retries=0)
    with pytest.raises(ExecutorError) as info:
        ex.map("sleep", [{"value": 0, "seconds": 60.0}])
    assert info.value.kind == "timeout"
    assert "1 attempt(s)" in str(info.value)


# -- real-sweep equality contract --------------------------------------------


def test_interrupted_fig11_resumes_bit_identical(tmp_path):
    kwargs = dict(rounds=4, blocks=[2, 3], strategies=("gpu-simple",))
    reference = fig11(**kwargs)

    tripped = Executor(journal_dir=tmp_path, progress=make_tripwire(2))
    with pytest.raises(InterruptedSweepError) as info:
        fig11(executor=tripped, **kwargs)

    resumed_ex = Executor(journal_dir=tmp_path)
    resumed = fig11(executor=resumed_ex, resume=info.value.run_id, **kwargs)
    assert resumed.to_json() == reference.to_json()  # byte-identical
    assert resumed.resumed_from == info.value.run_id
    assert resumed_ex.last_batch.replayed == 2
