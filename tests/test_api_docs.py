"""The committed API reference must match the code."""

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def test_api_docs_are_current():
    sys.path.insert(0, str(REPO / "tools"))
    try:
        import gen_api_docs
    finally:
        sys.path.pop(0)
    expected = gen_api_docs.generate()
    committed = (REPO / "docs" / "api.md").read_text()
    assert committed == expected, (
        "docs/api.md is stale — run `python tools/gen_api_docs.py`"
    )


def test_api_docs_cover_key_modules():
    text = (REPO / "docs" / "api.md").read_text()
    for module in (
        "repro.simcore.engine",
        "repro.gpu.device",
        "repro.sync.gpu_lockfree",
        "repro.model.barrier_costs",
        "repro.harness.runner",
    ):
        assert f"## `{module}`" in text, module
