"""Sweep-shape assertions for SWat and bitonic (small sizes).

`test_paper_claims.py` covers FFT; these cover the other two paper
workloads plus cross-cutting invariants every sweep must satisfy.
"""

import pytest

from repro.algorithms import BitonicSort, SmithWaterman
from repro.harness import experiments


@pytest.fixture(scope="module")
def small_sweeps():
    """One sweep per algorithm at reduced sizes (module-scoped: ~seconds)."""
    factories = experiments.ALGORITHM_FACTORIES
    saved = dict(factories)
    factories["swat"] = lambda: SmithWaterman(128, 128)
    factories["bitonic"] = lambda: BitonicSort(n=2**10)
    try:
        yield {
            "swat": experiments.algorithm_sweep("swat", blocks=[9, 18, 30]),
            "bitonic": experiments.algorithm_sweep("bitonic", blocks=[9, 18, 30]),
        }
    finally:
        factories.update(saved)


@pytest.mark.parametrize("algo", ["swat", "bitonic"])
class TestShapes:
    def test_kernel_time_falls_with_blocks(self, small_sweeps, algo):
        sweep = small_sweeps[algo]
        for strat in ("cpu-implicit", "gpu-lockfree"):
            series = sweep.totals[strat]
            assert series[0] > series[-1], strat

    def test_lockfree_best_everywhere(self, small_sweeps, algo):
        sweep = small_sweeps[algo]
        for i in range(len(sweep.blocks)):
            best = min(s[i] for s in sweep.totals.values())
            assert sweep.totals["gpu-lockfree"][i] == best

    def test_sync_time_nonnegative_everywhere(self, small_sweeps, algo):
        sweep = small_sweeps[algo]
        for strat in sweep.totals:
            assert all(v >= 0 for v in sweep.sync_series(strat)), strat

    def test_implicit_sync_flat(self, small_sweeps, algo):
        """CPU implicit sync cost is rounds × 6 µs regardless of blocks."""
        sweep = small_sweeps[algo]
        series = sweep.sync_series("cpu-implicit")
        assert max(series) - min(series) <= 0.02 * max(series)

    def test_tree2_never_worse_than_tree3(self, small_sweeps, algo):
        sweep = small_sweeps[algo]
        for i in range(len(sweep.blocks)):
            assert sweep.totals["gpu-tree-2"][i] <= sweep.totals["gpu-tree-3"][i]


class TestJitteredCrossover:
    def test_simple_implicit_crossover_survives_noise(self):
        """Integration-level version of bench_jitter's claim."""
        from repro.algorithms import MeanMicrobench
        from repro.harness.stats import repeat_run

        micro = MeanMicrobench(rounds=50, num_blocks_hint=30)
        below = {
            s: repeat_run(micro, s, 12, repeats=3, jitter_pct=4.0).mean_ns
            for s in ("cpu-implicit", "gpu-simple")
        }
        above = {
            s: repeat_run(micro, s, 30, repeats=3, jitter_pct=4.0).mean_ns
            for s in ("cpu-implicit", "gpu-simple")
        }
        assert below["gpu-simple"] < below["cpu-implicit"]
        assert above["gpu-simple"] > above["cpu-implicit"]


class TestExtensionBarriersAcrossWorkloads:
    @pytest.mark.parametrize(
        "strategy", ["gpu-sense-reversal", "gpu-dissemination"]
    )
    @pytest.mark.parametrize(
        "algo_factory",
        [
            lambda: SmithWaterman(32, 48),
            lambda: BitonicSort(n=256),
        ],
        ids=["swat", "bitonic"],
    )
    def test_correct_on_paper_workloads(self, strategy, algo_factory):
        from repro.harness import run

        result = run(algo_factory(), strategy, 6, threads_per_block=64)
        assert result.verified is True
        assert result.violations == 0
