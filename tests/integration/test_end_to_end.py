"""Integration: every algorithm × every strategy, through the simulator.

These runs execute the *real* computation under the *real* barrier
protocols with uneven per-block work (SWat diagonals, ceil partitions);
a barrier bug anywhere in the stack produces a wrong FFT / alignment /
sort order and fails verification.
"""

import pytest

from repro.algorithms import BitonicSort, FFT, MeanMicrobench, SmithWaterman
from repro.harness import run

STRATEGIES = [
    "cpu-explicit",
    "cpu-implicit",
    "gpu-simple",
    "gpu-simple-reset",
    "gpu-tree-2",
    "gpu-tree-3",
    "gpu-lockfree",
    "gpu-lockfree-serial",
]


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_fft_correct_under_every_strategy(strategy):
    result = run(FFT(n=256), strategy, num_blocks=7, threads_per_block=64)
    assert result.verified is True
    assert result.violations == 0


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_swat_correct_under_every_strategy(strategy):
    result = run(
        SmithWaterman(24, 31), strategy, num_blocks=5, threads_per_block=64
    )
    assert result.verified is True
    assert result.violations == 0


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_bitonic_correct_under_every_strategy(strategy):
    result = run(BitonicSort(n=128), strategy, num_blocks=6, threads_per_block=64)
    assert result.verified is True
    assert result.violations == 0


@pytest.mark.parametrize("num_blocks", [1, 2, 13, 30])
def test_micro_correct_at_grid_extremes(num_blocks):
    micro = MeanMicrobench(rounds=8, num_blocks_hint=30, threads_per_block=64)
    for strategy in ("gpu-simple", "gpu-tree-2", "gpu-lockfree"):
        result = run(micro, strategy, num_blocks)
        assert result.verified is True, (strategy, num_blocks)
        assert result.violations == 0


def test_device_strategies_beat_cpu_for_sync_bound_workload():
    """Eq. 5 vs Eq. 4 with a cheap barrier: one launch beats R launches."""
    micro = MeanMicrobench(rounds=50, num_blocks_hint=16, threads_per_block=32)
    implicit = run(micro, "cpu-implicit", 16).total_ns
    for strategy in ("gpu-tree-2", "gpu-lockfree"):
        assert run(micro, strategy, 16).total_ns < implicit


def test_null_strategy_produces_garbage_but_runs():
    """Sanity: the compute-only stub really is a broken barrier."""

    class Uneven(MeanMicrobench):
        def round_cost(self, round_idx, block_id, num_blocks):
            return 100 * (1 + block_id)

    micro = Uneven(rounds=6, num_blocks_hint=6, threads_per_block=8)
    result = run(micro, "null", 6, verify=False)
    assert result.violations > 0
