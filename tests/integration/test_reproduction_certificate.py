"""The reproduction certificate: every paper claim, checked live.

This is the single test that answers "does this repository reproduce the
paper?" — it runs the claim checks of :mod:`repro.harness.claims` at the
*calibrated* problem sizes (no test-size shortcuts) and requires every
one to pass.  It is the slowest test in the suite (~30 s): the price of
the word "certificate".
"""

import pytest

from repro.harness.claims import check_all


@pytest.fixture(scope="module")
def checks():
    return check_all(micro_rounds=100)


def test_every_claim_passes(checks):
    failed = [str(c) for c in checks if not c.passed]
    assert not failed, "claims failed:\n" + "\n".join(failed)


def test_certificate_covers_all_claim_families(checks):
    ids = {c.claim_id for c in checks}
    assert any(i.startswith("table1/") for i in ids)
    assert any(i.startswith("headline/") for i in ids)
    assert "table1/ordering" in ids
    assert "headline/improvement-ordering" in ids
    assert len(checks) >= 10


def test_micro_ratios_match_to_two_digits(checks):
    by_id = {c.claim_id: c for c in checks}
    explicit = by_id["headline/micro_lockfree_vs_explicit"]
    implicit = by_id["headline/micro_lockfree_vs_implicit"]
    assert explicit.measured_value == pytest.approx(7.8, abs=0.15)
    assert implicit.measured_value == pytest.approx(3.7, abs=0.15)
