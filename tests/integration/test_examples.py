"""Every example must run clean — examples rot unless executed.

Each script is run in a subprocess (its own interpreter, like a user
would) with the repo's source on the path; a non-zero exit or traceback
fails the test. Arguments are chosen small where the script accepts
them.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent.parent
EXAMPLES = REPO / "examples"


def _env_with_src() -> dict:
    """Subprocess env with the repo's src on PYTHONPATH, absolutely.

    The suite is usually invoked with a *relative* ``PYTHONPATH=src``,
    which stops resolving once the subprocess runs from ``tmp_path``.
    """
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + existing if existing else ""
    )
    return env

#: script → argv tail (kept small for test speed).
CASES = {
    "quickstart.py": [],
    "paper_figures.py": [],
    "sequence_alignment.py": ["96", "96"],
    "sorting_beyond_one_block.py": ["12"],
    "parallel_scan.py": ["11"],
    "deadlock_demo.py": [],
    "custom_kernel.py": [],
    "custom_barrier.py": [],
    "autotune_demo.py": [],
    "multi_gpu.py": [],
    "chaos_recovery.py": [],
}


def test_every_example_is_covered():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(CASES), (
        "examples changed; update tests/integration/test_examples.py"
    )


@pytest.mark.parametrize("script", sorted(CASES))
def test_example_runs(script, tmp_path):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *CASES[script]],
        capture_output=True,
        text=True,
        cwd=tmp_path,  # scripts must not depend on the repo cwd
        env=_env_with_src(),
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n--- stdout ---\n{result.stdout}"
        f"\n--- stderr ---\n{result.stderr}"
    )
    assert "Traceback" not in result.stderr
    assert result.stdout.strip(), f"{script} printed nothing"
