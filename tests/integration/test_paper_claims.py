"""Shape assertions for the paper's experimental claims (DESIGN.md §4).

These use moderately sized problems so the full suite stays fast; the
benchmark harness regenerates the figures at calibrated sizes.
"""

import pytest

from repro.algorithms import MeanMicrobench
from repro.harness import experiments, run
from repro.harness.phases import compute_only, sync_time_ns


@pytest.fixture(scope="module")
def micro_sweep():
    """One shared Fig.-11-style sweep at small scale."""
    return experiments.fig11(rounds=60, blocks=[4, 8, 12, 16, 20, 23, 24, 28, 30])


class TestFig11Shapes:
    def test_explicit_dominates_implicit(self, micro_sweep):
        for e, i in zip(
            micro_sweep.totals["cpu-explicit"], micro_sweep.totals["cpu-implicit"]
        ):
            assert e > i

    def test_implicit_and_lockfree_are_flat(self, micro_sweep):
        """§5.4 obs. 2/5: both scale independently of the block count."""
        for strat in ("cpu-implicit", "gpu-lockfree"):
            series = micro_sweep.sync_series(strat)
            assert max(series) - min(series) <= 0.02 * max(series), strat

    def test_simple_linear_in_blocks(self, micro_sweep):
        series = micro_sweep.sync_series("gpu-simple")
        diffs = [b - a for a, b in zip(series, series[1:])]
        assert all(d > 0 for d in diffs)

    def test_simple_crosses_implicit_between_23_and_24(self, micro_sweep):
        """§5.4 obs. 3: simple is cheaper below 24 blocks, dearer at 24+."""
        idx23 = micro_sweep.blocks.index(23)
        idx24 = micro_sweep.blocks.index(24)
        simple = micro_sweep.sync_series("gpu-simple")
        implicit = micro_sweep.sync_series("cpu-implicit")
        assert simple[idx23] < implicit[idx23]
        assert simple[idx24] > implicit[idx24]

    def test_tree2_beats_simple_only_past_threshold(self, micro_sweep):
        """§5.4 obs. 4: crossover near 11 blocks."""
        simple = micro_sweep.sync_series("gpu-simple")
        tree = micro_sweep.sync_series("gpu-tree-2")
        idx8 = micro_sweep.blocks.index(8)
        idx12 = micro_sweep.blocks.index(12)
        assert tree[idx8] > simple[idx8]
        assert tree[idx12] < simple[idx12]

    def test_lockfree_is_best_at_scale(self, micro_sweep):
        idx30 = micro_sweep.blocks.index(30)
        lockfree = micro_sweep.totals["gpu-lockfree"][idx30]
        for strat, series in micro_sweep.totals.items():
            if strat != "gpu-lockfree":
                assert lockfree < series[idx30], strat

    def test_headline_micro_ratios(self, micro_sweep):
        """Abstract: 7.8× vs CPU explicit, 3.7× vs CPU implicit."""
        idx30 = micro_sweep.blocks.index(30)
        lockfree = micro_sweep.sync_series("gpu-lockfree")[idx30]
        explicit = micro_sweep.sync_series("cpu-explicit")[idx30]
        implicit = micro_sweep.sync_series("cpu-implicit")[idx30]
        assert explicit / lockfree == pytest.approx(7.8, rel=0.08)
        assert implicit / lockfree == pytest.approx(3.7, rel=0.08)


class TestFig13And14Shapes:
    @pytest.fixture(scope="class")
    def fft_sweep(self):
        from repro.algorithms import FFT

        # Small FFT keeps runtime down; shapes are scale-free.
        experiments_algos = experiments.ALGORITHM_FACTORIES
        saved = experiments_algos["fft"]
        experiments_algos["fft"] = lambda: FFT(n=2**12)
        try:
            yield experiments.algorithm_sweep("fft", blocks=[9, 15, 21, 27, 30])
        finally:
            experiments_algos["fft"] = saved

    def test_kernel_time_falls_with_more_blocks(self, fft_sweep):
        """§7.2: more blocks → more resources → faster kernels."""
        for strat in ("cpu-implicit", "gpu-lockfree"):
            series = fft_sweep.totals[strat]
            assert series[0] > series[-1], strat

    def test_lockfree_always_best(self, fft_sweep):
        for i in range(len(fft_sweep.blocks)):
            best = min(s[i] for s in fft_sweep.totals.values())
            assert fft_sweep.totals["gpu-lockfree"][i] == best

    def test_tree_and_lockfree_beat_cpu_implicit_at_30(self, fft_sweep):
        """GPU simple is *supposed* to lose at 30 blocks (its crossover
        with CPU implicit is at 24, §5.4 obs. 3); the tree and lock-free
        barriers must win."""
        idx = fft_sweep.blocks.index(30)
        implicit = fft_sweep.totals["cpu-implicit"][idx]
        for strat in ("gpu-tree-2", "gpu-tree-3", "gpu-lockfree"):
            assert fft_sweep.totals[strat][idx] < implicit
        assert fft_sweep.totals["gpu-simple"][idx] > implicit

    def test_gpu_simple_beats_implicit_below_crossover(self, fft_sweep):
        idx = fft_sweep.blocks.index(21)
        assert (
            fft_sweep.totals["gpu-simple"][idx]
            < fft_sweep.totals["cpu-implicit"][idx]
        )

    def test_sync_time_orderings_fig14(self, fft_sweep):
        """Fig. 14 orderings at 30 blocks: lock-free lowest; implicit the
        highest of the scalable strategies; 2-level tree beats 3-level
        and (past the 24-block crossover) GPU simple is dearest of all.

        (The paper's blanket "CPU implicit needs the most time" cannot
        hold at N > 24 given its own crossover observation; we assert the
        mechanistically consistent version — noted in EXPERIMENTS.md.)
        """
        idx = fft_sweep.blocks.index(30)
        sync = {s: fft_sweep.sync_series(s)[idx] for s in fft_sweep.totals}
        assert sync["gpu-lockfree"] == min(sync.values())
        assert sync["gpu-simple"] == max(sync.values())
        assert sync["cpu-implicit"] > sync["gpu-tree-3"] > sync["gpu-tree-2"]


class TestAmdahlConsistency:
    def test_measured_speedup_respects_eq2(self):
        """The measured kernel speedup from swapping implicit → lock-free
        must match Eq. 2 evaluated at the measured ρ and S_S."""
        from repro.model.speedup import kernel_speedup

        micro = MeanMicrobench(rounds=80, num_blocks_hint=24, threads_per_block=32)
        n = 24
        null = compute_only(micro, n)
        implicit = run(micro, "cpu-implicit", n)
        lockfree = run(micro, "gpu-lockfree", n)

        rho = (implicit.total_ns - sync_time_ns(implicit, null)) / implicit.total_ns
        sync_speedup = sync_time_ns(implicit, null) / sync_time_ns(lockfree, null)
        predicted = kernel_speedup(rho, sync_speedup)
        measured = implicit.total_ns / lockfree.total_ns
        assert measured == pytest.approx(predicted, rel=0.02)
