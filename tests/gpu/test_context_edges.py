"""Edge-case tests for the BlockCtx device API."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.gpu.context import BlockCtx
from repro.gpu.device import Device


@pytest.fixture
def device():
    return Device()


def test_negative_compute_cost_rejected(device):
    ctx = BlockCtx(device, "k", 0, 1, 32)
    with pytest.raises(ConfigError, match="non-negative"):
        next(ctx.compute(-5))


def test_record_attaches_meta(device):
    ctx = BlockCtx(device, "k", 3, 4, 32)
    ctx.record("custom-phase", 0, foo="bar")
    (span,) = device.trace.spans("custom-phase")
    assert span.owner == "k/b3"
    assert span.meta == {"foo": "bar"}


def test_atomic_spans_record_queue_time(device):
    """The 'atomic' span carries the queue wait, feeding tracestats."""
    arr = device.memory.alloc("m", 1, dtype=np.int64)

    def block(i):
        ctx = BlockCtx(device, "k", i, 2, 32)
        yield from ctx.atomic_add(arr, 0, 1)

    device.engine.spawn(block(0))
    device.engine.spawn(block(1))
    device.run()
    spans = device.trace.spans("atomic")
    assert len(spans) == 2
    queue_waits = sorted(s.meta["queued"] for s in spans)
    assert queue_waits == [0, device.config.timings.atomic_ns]


def test_spin_span_counts_polls(device):
    arr = device.memory.alloc("flag", 1, dtype=np.int64)

    def writer():
        from repro.simcore import Delay

        yield Delay(50)
        arr.store(0, 0)  # fires, predicate still false: one wasted poll
        yield Delay(50)
        arr.store(0, 1)

    def block():
        ctx = BlockCtx(device, "k", 0, 1, 32)
        yield from ctx.spin_until(arr, lambda: arr.data[0] == 1, "flag")

    device.engine.spawn(writer())
    device.engine.spawn(block())
    device.run()
    (span,) = device.trace.spans("spin")
    assert span.meta["polls"] == 2
    assert span.duration == 100 + device.config.timings.spin_read_ns


def test_fire_with_no_waiters_is_harmless(device):
    arr = device.memory.alloc("x", 1)
    arr.store(0, 1.0)  # fires the signal; nobody is listening
    assert arr.signal.fire_count == 1


def test_direct_ctx_gets_full_shared_budget(device):
    """A BlockCtx built outside the scheduler can use the whole SM."""
    ctx = BlockCtx(device, "k", 0, 1, 32)
    tile = ctx.shared_alloc("big", device.config.shared_mem_per_sm // 8)
    assert tile.nbytes == device.config.shared_mem_per_sm
