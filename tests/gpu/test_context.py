"""Tests for the BlockCtx device API (compute, memory ops, atomics, spins)."""

import numpy as np
import pytest

from repro.errors import MemoryError_
from repro.gpu.context import BlockCtx
from repro.gpu.device import Device


@pytest.fixture
def device():
    return Device()


def make_ctx(device, block_id=0, num_blocks=4, threads=64):
    return BlockCtx(device, "test-kernel", block_id, num_blocks, threads)


def run_block(device, gen):
    device.engine.spawn(gen)
    return device.run()


def test_compute_charges_cost_then_applies_work(device):
    ctx = make_ctx(device)
    arr = device.memory.alloc("x", 4)
    seen = []

    def observer():
        # At t=400 (before the 500ns compute ends) the work must not
        # have been applied yet.
        from repro.simcore import Delay

        yield Delay(400)
        seen.append(float(arr.data[0]))

    def block():
        yield from ctx.compute(500, lambda: arr.store(0, 1.0))

    device.engine.spawn(observer())
    total = run_block(device, block())
    assert total == 500
    assert seen == [0.0]
    assert arr.data[0] == 1.0


def test_compute_records_span(device):
    ctx = make_ctx(device, block_id=2)

    def block():
        yield from ctx.compute(300, round=7)

    run_block(device, block())
    spans = device.trace.spans("compute", owner="test-kernel/b2")
    assert len(spans) == 1
    assert spans[0].duration == 300
    assert spans[0].meta == {"round": 7}


def test_zero_cost_compute_is_legal(device):
    ctx = make_ctx(device)

    def block():
        yield from ctx.compute(0, lambda: None)

    assert run_block(device, block()) == 0


def test_gread_gwrite_costs(device):
    ctx = make_ctx(device)
    arr = device.memory.alloc("x", 4, dtype=np.int64)
    t = device.config.timings
    values = []

    def block():
        yield from ctx.gwrite(arr, 1, 9)
        v = yield from ctx.gread(arr, 1)
        values.append(int(v))

    total = run_block(device, block())
    assert total == t.global_write_ns + t.global_read_ns
    assert values == [9]


def test_atomic_add_returns_old_value(device):
    ctx = make_ctx(device)
    arr = device.memory.alloc("counter", 1, dtype=np.int64)
    olds = []

    def block():
        old = yield from ctx.atomic_add(arr, 0, 5)
        olds.append(int(old))
        old = yield from ctx.atomic_add(arr, 0, 3)
        olds.append(int(old))

    run_block(device, block())
    assert olds == [0, 5]
    assert arr.data[0] == 8
    assert device.atomics.ops == 2


def test_contending_atomics_serialize(device):
    """N simultaneous atomicAdds to one cell take N·t_a (Eq. 6's core)."""
    arr = device.memory.alloc("mutex", 1, dtype=np.int64)
    t = device.config.timings
    n = 8

    def block(i):
        ctx = make_ctx(device, block_id=i, num_blocks=n)
        yield from ctx.atomic_add(arr, 0, 1)

    for i in range(n):
        device.engine.spawn(block(i))
    total = device.run()
    assert total == n * t.atomic_ns
    assert arr.data[0] == n


def test_atomics_to_different_cells_run_in_parallel(device):
    """Distinct addresses don't contend — the tree barrier's premise."""
    arr = device.memory.alloc("mutexes", 8, dtype=np.int64)
    t = device.config.timings

    def block(i):
        ctx = make_ctx(device, block_id=i, num_blocks=8)
        yield from ctx.atomic_add(arr, i, 1)

    for i in range(8):
        device.engine.spawn(block(i))
    total = device.run()
    assert total == t.atomic_ns  # all in parallel
    assert list(arr.data) == [1] * 8


def test_device_wide_atomics_ablation_serializes_everything():
    device = Device(device_wide_atomics=True)
    arr = device.memory.alloc("mutexes", 8, dtype=np.int64)
    t = device.config.timings

    def block(i):
        ctx = BlockCtx(device, "k", i, 8, 64)
        yield from ctx.atomic_add(arr, i, 1)

    for i in range(8):
        device.engine.spawn(block(i))
    assert device.run() == 8 * t.atomic_ns


def test_spin_until_charges_one_observation(device):
    ctx = make_ctx(device)
    arr = device.memory.alloc("flag", 1, dtype=np.int64)
    t = device.config.timings
    times = []

    def writer():
        from repro.simcore import Delay

        yield Delay(1000)
        arr.store(0, 1)

    def block():
        yield from ctx.spin_until(arr, lambda: arr.data[0] == 1, "flag")
        times.append(device.engine.now)

    device.engine.spawn(writer())
    device.engine.spawn(block())
    device.run()
    assert times == [1000 + t.spin_read_ns]


def test_syncthreads_cost(device):
    ctx = make_ctx(device)

    def block():
        yield from ctx.syncthreads()

    assert run_block(device, block()) == device.config.timings.syncthreads_ns


def test_atomic_2d_index_flattening(device):
    ctx = make_ctx(device)
    arr = device.memory.alloc("grid", (3, 4), dtype=np.int64)

    def block():
        yield from ctx.atomic_add(arr, (1, 2), 1)

    run_block(device, block())
    assert arr.data[1, 2] == 1


def test_atomic_slice_index_rejected(device):
    ctx = make_ctx(device)
    arr = device.memory.alloc("a", 4, dtype=np.int64)
    with pytest.raises(MemoryError_):
        ctx._flat_index(arr, slice(None))


def test_atomic_bad_2d_index_rejected(device):
    ctx = make_ctx(device)
    arr = device.memory.alloc("b", (2, 2), dtype=np.int64)
    with pytest.raises(MemoryError_):
        ctx._flat_index(arr, (5, 9))
