"""Tests for the display-watchdog timer."""

import dataclasses

import numpy as np
import pytest

from repro.errors import ConfigError, KernelTimeoutError
from repro.gpu.config import DeviceConfig
from repro.gpu.presets import get_preset
from repro.gpu.device import Device
from repro.gpu.host import Host
from repro.gpu.kernel import KernelSpec


def launch_and_run(device, spec):
    host = Host(device)

    def host_program():
        yield from host.launch(spec)
        yield from host.synchronize()

    device.engine.spawn(host_program(), "host")
    return device.run()


def test_fast_kernel_unaffected():
    cfg = dataclasses.replace(get_preset("gtx280"), watchdog_ns=1_000_000)
    device = Device(cfg)

    def program(ctx):
        yield from ctx.compute(500)

    launch_and_run(device, KernelSpec("k", program, 4, 64))
    assert device.kernels_completed == 1


def test_overlong_kernel_killed():
    cfg = dataclasses.replace(get_preset("gtx280"), watchdog_ns=10_000)
    device = Device(cfg)

    def program(ctx):
        yield from ctx.compute(50_000)  # longer than the watchdog

    with pytest.raises(KernelTimeoutError) as exc:
        launch_and_run(device, KernelSpec("slowpoke", program, 1, 64))
    assert exc.value.kernel_name == "slowpoke"
    assert exc.value.watchdog_ns == 10_000


def test_deadlocked_barrier_manifests_as_launch_timeout():
    """The §5 hazard on a display-attached GPU: not a hang, a killed
    launch — exactly what a developer would have seen in 2009."""
    cfg = dataclasses.replace(get_preset("gtx280"), watchdog_ns=1_000_000)
    device = Device(cfg)
    arrivals = device.memory.alloc("arrivals", 1, dtype=np.int64)
    n = cfg.num_sms + 1  # one block more than can be co-resident

    def naive_barrier(ctx):
        yield from ctx.atomic_add(arrivals, 0, 1)
        yield from ctx.spin_until(
            arrivals, lambda: arrivals.data[0] >= n, "naive barrier"
        )

    spec = KernelSpec(
        "unsafe", naive_barrier, grid_blocks=n, block_threads=64,
        shared_mem_per_block=cfg.shared_mem_per_sm,
    )
    with pytest.raises(KernelTimeoutError):
        launch_and_run(device, spec)


def test_headless_device_hangs_with_deadlock_error_instead():
    """Without a watchdog the same situation is a detected deadlock."""
    from repro.errors import DeadlockError

    device = Device()  # watchdog_ns=None
    arrivals = device.memory.alloc("arrivals", 1, dtype=np.int64)
    n = device.config.num_sms + 1

    def naive_barrier(ctx):
        yield from ctx.atomic_add(arrivals, 0, 1)
        yield from ctx.spin_until(
            arrivals, lambda: arrivals.data[0] >= n, "naive barrier"
        )

    spec = KernelSpec(
        "unsafe", naive_barrier, grid_blocks=n, block_threads=64,
        shared_mem_per_block=device.config.shared_mem_per_sm,
    )
    with pytest.raises(DeadlockError):
        launch_and_run(device, spec)


def test_back_to_back_kernels_each_get_their_own_watchdog():
    cfg = dataclasses.replace(get_preset("gtx280"), watchdog_ns=20_000)
    device = Device(cfg)
    host = Host(device)

    def program(ctx):
        yield from ctx.compute(8_000)

    def host_program():
        # Two 8 µs kernels: together they exceed 20 µs of wall time but
        # each individually stays under the watchdog.
        for i in range(2):
            yield from host.launch(KernelSpec(f"k{i}", program, 1, 64))
        yield from host.synchronize()

    device.engine.spawn(host_program(), "host")
    device.run()
    assert device.kernels_completed == 2


def test_watchdog_config_validation():
    with pytest.raises(ConfigError):
        DeviceConfig(watchdog_ns=0)
