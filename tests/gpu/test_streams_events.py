"""Tests for streams and events (pre-Fermi kernel-engine semantics)."""

import pytest

from repro.errors import DeadlockError, LaunchError
from repro.gpu.device import Device
from repro.gpu.host import Host
from repro.gpu.kernel import KernelSpec
from repro.gpu.stream import Event, Stream


def make_spec(name, cost=500, tag=None, sink=None):
    def program(ctx):
        yield from ctx.compute(
            cost, (lambda: sink.append(tag)) if sink is not None else None
        )

    return KernelSpec(name, program, grid_blocks=1, block_threads=32)


@pytest.fixture
def setup():
    device = Device()
    return device, Host(device)


def run_host(device, gen):
    device.engine.spawn(gen, "host")
    return device.run()


class TestStreams:
    def test_kernels_across_streams_serialize_pre_fermi(self, setup):
        """Compute 1.x has one kernel engine: no concurrent kernels."""
        device, host = setup
        a, b = Stream("a"), Stream("b")

        def program():
            yield from host.launch(make_spec("ka", cost=1000), stream=a)
            yield from host.launch(make_spec("kb", cost=1000), stream=b)
            yield from host.synchronize()

        total = run_host(device, program())
        t = device.config.timings
        # Serial: launch + 2 × (setup + compute + teardown); second launch
        # pipelines behind the first kernel.
        assert total == t.host_launch_ns + 2 * (
            t.kernel_setup_ns + 1000 + t.kernel_teardown_ns
        )

    def test_stream_synchronize_waits_only_that_stream(self, setup):
        device, host = setup
        a, b = Stream("a"), Stream("b")
        order = []

        def program():
            yield from host.launch(make_spec("ka", tag="a", sink=order), stream=a)
            yield from host.launch(make_spec("kb", tag="b", sink=order), stream=b)
            yield from host.stream_synchronize(a)
            order.append(("host-after-a", device.engine.now))
            yield from host.synchronize()

        run_host(device, program())
        # Stream a's kernel finished before the host proceeded.
        host_mark = next(x for x in order if isinstance(x, tuple))
        assert order.index("a") < order.index(host_mark)

    def test_default_stream_used_when_none_given(self, setup):
        device, host = setup

        def program():
            yield from host.launch(make_spec("k"))
            yield from host.stream_synchronize(host.default_stream)

        run_host(device, program())
        assert host.launches[0].done


class TestEvents:
    def test_event_records_timestamp_after_preceding_work(self, setup):
        device, host = setup
        ev = Event("done")

        def program():
            yield from host.launch(make_spec("k", cost=700))
            yield from host.record_event(ev)
            yield from host.event_synchronize(ev)

        run_host(device, program())
        t = device.config.timings
        assert ev.recorded
        assert ev.timestamp_ns == (
            t.host_launch_ns + t.kernel_setup_ns + 700 + t.kernel_teardown_ns
        )

    def test_elapsed_between_events(self, setup):
        device, host = setup
        start, stop = Event("start"), Event("stop")

        def program():
            yield from host.record_event(start)
            yield from host.launch(make_spec("k", cost=900))
            yield from host.record_event(stop)
            yield from host.synchronize()

        run_host(device, program())
        t = device.config.timings
        # start fires immediately (empty engine); the interval then spans
        # the kernel's *exposed* launch latency plus its execution — the
        # same quantity cudaEventElapsedTime would report here.
        assert stop.elapsed_since(start) == (
            t.host_launch_ns + t.kernel_setup_ns + 900 + t.kernel_teardown_ns
        )

    def test_elapsed_requires_both_recorded(self):
        a, b = Event(), Event()
        a.recorded, a.timestamp_ns = True, 10
        with pytest.raises(ValueError):
            b.elapsed_since(a)

    def test_double_record_rejected(self, setup):
        device, host = setup
        ev = Event()

        def program():
            yield from host.record_event(ev)
            yield from host.event_synchronize(ev)
            yield from host.record_event(ev)

        with pytest.raises(Exception) as exc:
            run_host(device, program())
        assert isinstance(exc.value.__cause__ or exc.value, LaunchError) or (
            "already recorded" in str(exc.value)
        )

    def test_kernel_gated_on_event(self, setup):
        """wait_event delays the kernel until the event is recorded."""
        device, host = setup
        ev = Event("gate")
        order = []

        def program():
            # Record the event after a long kernel in stream a...
            a = Stream("a")
            yield from host.launch(
                make_spec("slow", cost=5000, tag="slow", sink=order), stream=a
            )
            yield from host.record_event(ev, stream=a)
            # ...and gate a kernel in stream b on it.
            yield from host.launch(
                make_spec("gated", cost=100, tag="gated", sink=order),
                stream=Stream("b"),
                wait_event=ev,
            )
            yield from host.synchronize()

        run_host(device, program())
        assert order == ["slow", "gated"]

    def test_event_deadlock_detected(self, setup):
        """Gating a kernel on an event recorded only *later* wedges the
        pre-Fermi engine head-of-line — and the simulator says so."""
        device, host = setup
        ev = Event("never-yet")

        def program():
            yield from host.launch(make_spec("gated"), wait_event=ev)
            # The marker that would record ev sits *behind* the gated
            # kernel in the engine FIFO: classic self-deadlock.
            yield from host.record_event(ev)
            yield from host.synchronize()

        with pytest.raises(DeadlockError):
            run_host(device, program())
