"""Tests for host↔device transfer modeling."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.gpu.config import DeviceConfig
from repro.gpu.device import Device
from repro.gpu.host import Host
from repro.gpu.kernel import KernelSpec


@pytest.fixture
def setup():
    device = Device()
    return device, Host(device)


def run_host(device, gen):
    device.engine.spawn(gen, "host")
    return device.run()


def test_h2d_charges_overhead_plus_bandwidth(setup):
    device, host = setup
    arr = device.memory.alloc("x", 1024, dtype=np.float64)
    data = np.arange(1024.0)
    cfg = device.config

    def program():
        yield from host.memcpy_h2d(arr, data)

    total = run_host(device, program())
    expected = cfg.timings.memcpy_overhead_ns + data.nbytes / cfg.pcie_gbps
    assert total == round(expected)
    assert np.array_equal(arr.data, data)


def test_d2h_returns_copy(setup):
    device, host = setup
    arr = device.memory.alloc("y", 16, dtype=np.float64, fill=3.5)
    out = {}

    def program():
        result = yield from host.memcpy_d2h(arr)
        out["data"] = result

    run_host(device, program())
    assert np.array_equal(out["data"], np.full(16, 3.5))
    out["data"][0] = -1  # mutating the copy must not touch device memory
    assert arr.data[0] == 3.5


def test_memcpy_synchronizes_with_stream(setup):
    """cudaMemcpy d2h must observe the preceding kernel's writes."""
    device, host = setup
    arr = device.memory.alloc("z", 8, dtype=np.float64)

    def kernel(ctx):
        yield from ctx.compute(500, lambda: arr.store(slice(None), 7.0))

    spec = KernelSpec("k", kernel, grid_blocks=1, block_threads=32)
    out = {}

    def program():
        yield from host.launch(spec)
        result = yield from host.memcpy_d2h(arr)  # no explicit synchronize
        out["data"] = result

    run_host(device, program())
    assert np.array_equal(out["data"], np.full(8, 7.0))


def test_bigger_transfers_cost_more(setup):
    device, host = setup
    small = device.memory.alloc("small", 64)
    big = device.memory.alloc("big", 1 << 20)

    def timed(array, data):
        dev = Device()
        h = Host(dev)
        a = dev.memory.alloc("a", array.shape, dtype=array.dtype)

        def program():
            yield from h.memcpy_h2d(a, data)

        dev.engine.spawn(program(), "host")
        return dev.run()

    assert timed(big, np.zeros(1 << 20)) > timed(small, np.zeros(64))


def test_pcie_config_validation():
    with pytest.raises(ConfigError):
        DeviceConfig(pcie_gbps=0)
