"""Tests for the roofline-style stage cost model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.gpu.presets import get_preset
from repro.gpu.costmodel import StageCostModel


@pytest.fixture
def model():
    return StageCostModel(get_preset("gtx280"), threads_per_block=256)


def test_zero_items_costs_only_overhead(model):
    assert model.stage_cost_ns(0, 8.0) == model.stage_overhead_ns


def test_memory_bound_stage(model):
    # 1024 items × 32 B at ~4.72 B/ns/SM ≈ 6.9 µs, far above the flop term.
    cost = model.stage_cost_ns(1024, 32.0, flops_per_item=1.0)
    mem_only = model.stage_cost_ns(1024, 32.0)
    assert cost == mem_only


def test_compute_bound_stage(model):
    # 1 B/item but 10k flops/item: the flop term dominates.
    cost = model.stage_cost_ns(1024, 1.0, flops_per_item=10_000.0)
    assert cost > model.stage_cost_ns(1024, 1.0)


def test_partial_warp_rounds_up(model):
    assert model.stage_cost_ns(1, 32.0) == model.stage_cost_ns(32, 32.0)
    assert model.stage_cost_ns(33, 32.0) == model.stage_cost_ns(64, 32.0)


def test_coalescing_degrades_bandwidth():
    full = StageCostModel(get_preset("gtx280"), 256, coalescing=1.0)
    half = StageCostModel(get_preset("gtx280"), 256, coalescing=0.5)
    assert half.stage_cost_ns(1024, 32.0) > full.stage_cost_ns(1024, 32.0)


def test_rates_derive_from_config(model):
    cfg = get_preset("gtx280")
    assert model.flops_per_ns == pytest.approx(8 * 1.296)
    assert model.bytes_per_ns == pytest.approx(cfg.global_bandwidth_gbps / 30)


def test_validation():
    with pytest.raises(ConfigError):
        StageCostModel(get_preset("gtx280"), 256, coalescing=0.0)
    with pytest.raises(ConfigError):
        StageCostModel(get_preset("gtx280"), 0)
    with pytest.raises(ConfigError):
        StageCostModel(get_preset("gtx280"), 256).stage_cost_ns(-1, 8.0)


@given(
    items=st.integers(0, 10_000),
    bpi=st.floats(0, 128),
    fpi=st.floats(0, 1000),
)
def test_cost_is_monotone_and_bounded_below(items, bpi, fpi):
    model = StageCostModel(get_preset("gtx280"), 128)
    cost = model.stage_cost_ns(items, bpi, fpi)
    assert cost >= model.stage_overhead_ns
    assert model.stage_cost_ns(items + 64, bpi, fpi) >= cost
