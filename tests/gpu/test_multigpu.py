"""Tests for multiple devices sharing one simulated system.

The paper's §3 dismisses routing inter-*block* communication through the
inter-GPU path (Stuart & Owens) because "data needs to be moved to the
CPU host memory first and then transferred back".  With two devices on
one engine we can measure exactly that claim.
"""

import numpy as np

from repro.gpu.device import Device
from repro.gpu.host import Host
from repro.gpu.kernel import KernelSpec
from repro.model.barrier_costs import lockfree_cost
from repro.simcore import Engine


def add_one_kernel(ctx, data):
    lo = ctx.block_id * (len(data) // ctx.num_blocks)
    hi = lo + len(data) // ctx.num_blocks

    def work():
        data.data[lo:hi] += 1.0

    yield from ctx.compute(500, work)


def test_two_devices_share_virtual_time():
    engine = Engine()
    dev_a = Device(engine=engine)
    dev_b = Device(engine=engine)
    assert dev_a.engine is dev_b.engine
    host_a, host_b = Host(dev_a), Host(dev_b)
    xa = dev_a.memory.alloc("x", 64)
    xb = dev_b.memory.alloc("x", 64)  # same name, different device: fine

    def program():
        ha = yield from host_a.launch(
            KernelSpec("ka", add_one_kernel, 4, 32, params=dict(data=xa))
        )
        hb = yield from host_b.launch(
            KernelSpec("kb", add_one_kernel, 4, 32, params=dict(data=xb))
        )
        yield from host_a.synchronize()
        yield from host_b.synchronize()
        return ha, hb

    engine.spawn(program(), "host")
    engine.run()
    assert np.all(xa.data == 1.0) and np.all(xb.data == 1.0)
    # The two devices' kernels overlapped (separate kernel engines).
    ha, hb = host_a.launches[0], host_b.launches[0]
    assert ha.start_ns < hb.end_ns and hb.start_ns < ha.end_ns


def test_devices_have_independent_kernel_engines():
    """Serialization is per device: two kernels on one device serialize,
    one each on two devices run concurrently."""
    engine = Engine()
    dev_a, dev_b = Device(engine=engine), Device(engine=engine)
    host_a, host_b = Host(dev_a), Host(dev_b)

    def noop(ctx):
        yield from ctx.compute(10_000)

    def program():
        yield from host_a.launch(KernelSpec("a1", noop, 1, 32))
        yield from host_b.launch(KernelSpec("b1", noop, 1, 32))
        yield from host_a.synchronize()
        yield from host_b.synchronize()

    engine.spawn(program(), "host")
    total_two_devices = engine.run()

    engine2 = Engine()
    dev = Device(engine=engine2)
    host = Host(dev)

    def program2():
        yield from host.launch(KernelSpec("a1", noop, 1, 32))
        yield from host.launch(KernelSpec("b1", noop, 1, 32))
        yield from host.synchronize()

    engine2.spawn(program2(), "host")
    total_one_device = engine2.run()
    assert total_two_devices < total_one_device


def test_inter_gpu_barrier_is_much_costlier_than_intra():
    """The §3 claim, quantified: a grid barrier through host memory
    (sync + d2h + h2d + relaunch on both devices) costs orders of
    magnitude more than the on-device lock-free barrier."""
    engine = Engine()
    dev_a, dev_b = Device(engine=engine), Device(engine=engine)
    host_a, host_b = Host(dev_a), Host(dev_b)
    xa = dev_a.memory.alloc("halo", 1024)
    xb = dev_b.memory.alloc("halo", 1024)

    def program():
        t0 = engine.now
        # One "inter-GPU barrier": drain both devices, exchange halos
        # through the host, relaunch on both.
        yield from host_a.synchronize()
        yield from host_b.synchronize()
        halo_a = yield from host_a.memcpy_d2h(xa)
        halo_b = yield from host_b.memcpy_d2h(xb)
        yield from host_a.memcpy_h2d(xa, halo_b)
        yield from host_b.memcpy_h2d(xb, halo_a)
        yield from host_a.launch(
            KernelSpec("ka", add_one_kernel, 4, 32, params=dict(data=xa))
        )
        yield from host_b.launch(
            KernelSpec("kb", add_one_kernel, 4, 32, params=dict(data=xb))
        )
        yield from host_a.synchronize()
        yield from host_b.synchronize()
        return engine.now - t0

    p = engine.spawn(program(), "host")
    engine.run()
    inter_gpu_ns = p.result
    assert inter_gpu_ns > 20 * lockfree_cost(30)
