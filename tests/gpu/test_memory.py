"""Tests for simulated global memory."""

import numpy as np
import pytest

from repro.errors import MemoryError_
from repro.gpu.device import Device
from repro.simcore import Delay, WaitUntil


@pytest.fixture
def device():
    return Device()


def test_alloc_and_access(device):
    arr = device.memory.alloc("x", 16, dtype=np.int64, fill=7)
    assert arr.shape == (16,)
    assert arr.dtype == np.int64
    assert arr.load(3) == 7
    arr.store(3, 42)
    assert arr.data[3] == 42
    assert arr.stores == 1
    assert arr.loads == 1


def test_alloc_2d(device):
    arr = device.memory.alloc("m", (4, 5))
    arr.store((2, 3), 1.5)
    assert arr.load((2, 3)) == 1.5


def test_duplicate_alloc_rejected(device):
    device.memory.alloc("x", 4)
    with pytest.raises(MemoryError_):
        device.memory.alloc("x", 4)


def test_capacity_enforced():
    device = Device()
    # 1 GB capacity: a 2 GB request must fail.
    with pytest.raises(MemoryError_):
        device.memory.alloc("huge", 2 * 1024**3, dtype=np.uint8)


def test_used_bytes_tracking(device):
    device.memory.alloc("a", 128, dtype=np.float64)
    assert device.memory.used_bytes == 128 * 8
    device.memory.free("a")
    assert device.memory.used_bytes == 0


def test_free_unknown_rejected(device):
    with pytest.raises(MemoryError_):
        device.memory.free("nope")


def test_get_and_contains(device):
    arr = device.memory.alloc("flags", 8)
    assert device.memory.get("flags") is arr
    assert "flags" in device.memory
    assert "other" not in device.memory
    with pytest.raises(MemoryError_):
        device.memory.get("other")


def test_wrap_adopts_host_array(device):
    host = np.arange(10.0)
    arr = device.memory.wrap("input", host)
    host[0] = 99.0  # by-reference semantics
    assert arr.data[0] == 99.0


def test_store_wakes_spinners(device):
    arr = device.memory.alloc("flag", 1, dtype=np.int64)
    events = []

    def spinner():
        yield WaitUntil(arr.signal, lambda: arr.data[0] == 1, "flag set")
        events.append(("woke", device.engine.now))

    def writer():
        yield Delay(100)
        arr.store(0, 1)

    device.engine.spawn(spinner())
    device.engine.spawn(writer())
    device.run()
    assert events == [("woke", 100)]


def test_fill_fires_watchers_once(device):
    arr = device.memory.alloc("a", 8, dtype=np.int64)
    woken = []

    def spinner():
        yield WaitUntil(arr.signal, lambda: bool((arr.data == 5).all()), "all 5")
        woken.append(device.engine.now)

    def writer():
        yield Delay(10)
        arr.fill(5)

    device.engine.spawn(spinner())
    device.engine.spawn(writer())
    device.run()
    assert woken == [10]
    assert arr.signal.fire_count >= 1


def test_iteration_lists_allocations(device):
    device.memory.alloc("a", 1)
    device.memory.alloc("b", 1)
    assert sorted(a.name for a in device.memory) == ["a", "b"]
