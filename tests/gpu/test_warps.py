"""Tests for warp-level intra-block execution."""

import dataclasses

import pytest

from repro.errors import SyncProtocolError
from repro.gpu.presets import get_preset
from repro.gpu.context import BlockCtx
from repro.gpu.device import Device
from repro.gpu.warps import IntraBlockBarrier, run_warps
from repro.simcore.effects import Delay


def make_block(device, threads=128):
    return BlockCtx(device, "k", 0, 1, threads)


def run_one(device, gen):
    device.engine.spawn(gen)
    return device.run()


class TestRunWarps:
    def test_spawns_one_agent_per_warp(self):
        device = Device()
        ctx = make_block(device, threads=128)
        seen = []

        def warp_fn(wctx):
            seen.append((wctx.warp_id, wctx.lanes))
            yield Delay(10)

        def block():
            yield from run_warps(ctx, warp_fn, 100)

        run_one(device, block())
        assert seen == [(0, (0, 32)), (1, (32, 64)), (2, (64, 96)), (3, (96, 100))]

    def test_warps_run_concurrently(self):
        device = Device()
        ctx = make_block(device)

        def warp_fn(wctx):
            yield Delay(500)

        def block():
            yield from run_warps(ctx, warp_fn, 128)

        assert run_one(device, block()) == 500  # 4 warps in parallel

    def test_thread_count_validation(self):
        device = Device()
        ctx = make_block(device, threads=64)

        def warp_fn(wctx):
            yield Delay(1)

        with pytest.raises(SyncProtocolError):
            next(run_warps(ctx, warp_fn, 0))
        with pytest.raises(SyncProtocolError):
            next(run_warps(ctx, warp_fn, 65))


class TestIntraBlockBarrier:
    def test_all_warps_wait_for_last(self):
        device = Device()
        ctx = make_block(device)
        exits = []

        def warp_fn(wctx):
            yield Delay(100 * (wctx.warp_id + 1))  # staggered arrival
            yield from wctx.syncthreads()
            exits.append((wctx.warp_id, device.engine.now))

        def block():
            yield from run_warps(ctx, warp_fn, 128)

        run_one(device, block())
        t = device.config.timings
        # Last warp arrives at 400; everyone exits at 400 + syncthreads.
        assert all(when == 400 + t.syncthreads_ns for _w, when in exits)

    def test_barrier_reusable_across_epochs(self):
        device = Device()
        ctx = make_block(device)
        order = []

        def warp_fn(wctx):
            for phase in range(3):
                yield Delay(10 * (wctx.warp_id + 1))
                yield from wctx.syncthreads()
                order.append((phase, wctx.warp_id))

        def block():
            yield from run_warps(ctx, warp_fn, 64)

        run_one(device, block())
        # Phases strictly ordered: all of phase p before any of p+1.
        phases = [p for p, _w in order]
        assert phases == sorted(phases)

    def test_parties_validation(self):
        device = Device()
        with pytest.raises(SyncProtocolError):
            IntraBlockBarrier(make_block(device), 0)


class TestDetailedLockfree:
    def test_detailed_matches_coarse_timing_exactly(self):
        """The load-bearing claim: folding intra-block parallelism into
        the cost model loses nothing — the warp-granular execution of
        the checking block produces identical virtual times."""
        from repro.algorithms import MeanMicrobench
        from repro.harness import run

        for num_blocks in (2, 8, 16, 30):
            micro = MeanMicrobench(rounds=10, num_blocks_hint=30)
            coarse = run(micro, "gpu-lockfree", num_blocks)
            detailed = run(micro, "gpu-lockfree-detailed", num_blocks)
            assert coarse.total_ns == detailed.total_ns, num_blocks
            assert detailed.verified is True

    def test_detailed_multi_warp_checker(self):
        """With a narrow warp the checker block really runs several
        concurrent watcher agents — timing must still match coarse."""
        from repro.algorithms import MeanMicrobench
        from repro.harness import run

        cfg = dataclasses.replace(get_preset("gtx280"), warp_size=8)
        micro = MeanMicrobench(rounds=5, num_blocks_hint=30)
        coarse = run(micro, "gpu-lockfree", 30, config=cfg)
        detailed = run(micro, "gpu-lockfree-detailed", 30, config=cfg)
        assert coarse.total_ns == detailed.total_ns
        assert detailed.verified is True

    def test_detailed_and_serial_mutually_exclusive(self):
        from repro.sync import GpuLockFreeSync

        with pytest.raises(SyncProtocolError):
            GpuLockFreeSync(serial_gather=True, detailed=True)

    def test_detailed_registered(self):
        from repro.sync import get_strategy

        assert get_strategy("gpu-lockfree-detailed").name == "gpu-lockfree-detailed"
