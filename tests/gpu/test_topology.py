"""Tests for the declarative device topology model."""

import pytest

from repro.errors import ConfigError
from repro.gpu.config import DeviceConfig
from repro.gpu.topology import CO_RESIDENCY_POLICIES, TOPOLOGY_KINDS, Topology


# -- validation --------------------------------------------------------------


def test_default_is_the_papers_world():
    topo = Topology()
    assert topo.kind == "single-device"
    assert topo.num_domains == 1
    assert topo.co_residency == "exclusive"
    assert topo.crossing_ns == 0


def test_kind_and_policy_vocabularies():
    assert "single-device" in TOPOLOGY_KINDS
    assert "cooperative" in CO_RESIDENCY_POLICIES
    with pytest.raises(ConfigError, match="kind"):
        Topology(kind="many-core")
    with pytest.raises(ConfigError, match="co-residency"):
        Topology(co_residency="shared")


def test_single_device_must_stay_flat():
    with pytest.raises(ConfigError, match="exactly one domain"):
        Topology(kind="single-device", num_domains=2)
    with pytest.raises(ConfigError, match="crossing_ns"):
        Topology(kind="single-device", crossing_ns=100)


def test_multi_domain_kinds_need_at_least_two_domains():
    for kind in ("multi-device", "cluster"):
        with pytest.raises(ConfigError, match=">= 2 domains"):
            Topology(kind=kind, num_domains=1)


def test_crossing_latency_must_be_non_negative():
    with pytest.raises(ConfigError, match="non-negative"):
        Topology(kind="multi-device", num_domains=2, crossing_ns=-1)


def test_num_sms_must_divide_into_domains():
    topo = Topology(kind="multi-device", num_domains=2)
    DeviceConfig(num_sms=30, topology=topo)  # fine
    with pytest.raises(ConfigError, match="divide evenly"):
        DeviceConfig(num_sms=31, topology=topo)


def test_topology_is_frozen_and_hashable():
    topo = Topology(kind="cluster", num_domains=4, crossing_ns=100)
    with pytest.raises(AttributeError):
        topo.crossing_ns = 0
    assert hash(topo) == hash(
        Topology(kind="cluster", num_domains=4, crossing_ns=100)
    )


# -- block placement ---------------------------------------------------------


def test_single_domain_places_every_block_in_domain_zero():
    topo = Topology()
    assert [topo.domain_of(b, 8) for b in range(8)] == [0] * 8


def test_contiguous_partition_covers_every_domain_near_evenly():
    topo = Topology(kind="multi-device", num_domains=2, crossing_ns=10)
    domains = [topo.domain_of(b, 8) for b in range(8)]
    assert domains == [0, 0, 0, 0, 1, 1, 1, 1]
    # An odd grid still covers both domains, near-evenly.
    members = topo.members_by_domain(7)
    assert sorted(members) == [0, 1]
    sizes = sorted(len(v) for v in members.values())
    assert sizes == [3, 4]


def test_fewer_blocks_than_domains_occupies_a_prefix():
    topo = Topology(kind="cluster", num_domains=16, crossing_ns=10)
    members = topo.members_by_domain(4)
    assert len(members) == 4
    assert all(len(v) == 1 for v in members.values())


def test_domain_of_rejects_out_of_range_blocks():
    topo = Topology(kind="multi-device", num_domains=2, crossing_ns=10)
    with pytest.raises(ConfigError):
        topo.domain_of(8, 8)
    with pytest.raises(ConfigError):
        topo.domain_of(-1, 8)


# -- costs and co-residency --------------------------------------------------


def test_crossing_latency_is_zero_within_a_domain():
    topo = Topology(kind="multi-device", num_domains=2, crossing_ns=1500)
    assert topo.crossing_latency_ns(0, 0) == 0
    assert topo.crossing_latency_ns(0, 1) == 1500
    assert topo.crossing_latency_ns(1, 0) == 1500


def test_exclusive_co_residency_is_one_block_per_sm():
    cfg = DeviceConfig()
    assert cfg.topology.max_co_resident_blocks(cfg) == cfg.num_sms
    assert cfg.topology.shared_mem_claim(cfg) == cfg.shared_mem_per_sm


def test_cooperative_co_residency_lifts_the_cap():
    topo = Topology(co_residency="cooperative")
    cfg = DeviceConfig(topology=topo)
    assert (
        topo.max_co_resident_blocks(cfg)
        == cfg.num_sms * cfg.max_blocks_per_sm
    )
    assert topo.shared_mem_claim(cfg) == 0


def test_sms_per_domain():
    topo = Topology(kind="cluster", num_domains=4, crossing_ns=10)
    cfg = DeviceConfig(num_sms=32, topology=topo)
    assert topo.sms_per_domain(cfg) == 8


def test_describe_is_human_readable():
    assert "single device" in Topology().describe()
    twin = Topology(kind="multi-device", num_domains=2, crossing_ns=1500)
    assert "2 devices" in twin.describe()
    assert "1500 ns" in twin.describe()
