"""Tests for the device configuration and occupancy math."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.gpu.config import DeviceConfig
from repro.gpu.presets import get_preset
from repro.model.calibration import CalibratedTimings


def test_gtx280_preset_matches_paper_section2():
    cfg = get_preset("gtx280")
    assert cfg.num_sms == 30
    assert cfg.sps_per_sm == 8
    assert cfg.total_sps == 240
    assert cfg.clock_mhz == 1296
    assert cfg.shared_mem_per_sm == 16 * 1024
    assert cfg.registers_per_sm == 16 * 1024
    assert cfg.global_mem_bytes == 1024**3
    assert cfg.global_bandwidth_gbps == 141.7
    assert cfg.max_threads_per_block == 512


def test_full_shared_memory_forces_one_block_per_sm():
    """The paper's co-residency trick (§5)."""
    cfg = get_preset("gtx280")
    assert cfg.blocks_per_sm(256, shared_mem_per_block=cfg.shared_mem_per_sm) == 1


def test_occupancy_limited_by_threads():
    cfg = get_preset("gtx280")
    # 1024 threads/SM: two 512-thread blocks would exceed it.
    assert cfg.blocks_per_sm(512, registers_per_thread=1) == 2
    assert cfg.blocks_per_sm(256, registers_per_thread=1) == 4


def test_occupancy_limited_by_block_cap():
    cfg = get_preset("gtx280")
    assert cfg.blocks_per_sm(1, registers_per_thread=0) == cfg.max_blocks_per_sm


def test_occupancy_limited_by_registers():
    cfg = get_preset("gtx280")
    # 16 regs × 512 threads = 8192 ≤ 16384 → 2 fit; threads cap to 2 anyway.
    assert cfg.blocks_per_sm(512, registers_per_thread=16) == 2
    assert cfg.blocks_per_sm(512, registers_per_thread=32) == 1
    assert cfg.blocks_per_sm(512, registers_per_thread=64) == 0


def test_oversized_block_yields_zero_occupancy():
    cfg = get_preset("gtx280")
    assert cfg.blocks_per_sm(513) == 0
    assert cfg.blocks_per_sm(64, shared_mem_per_block=cfg.shared_mem_per_sm + 1) == 0


def test_invalid_threads_rejected():
    with pytest.raises(ConfigError):
        get_preset("gtx280").blocks_per_sm(0)


def test_config_validation():
    with pytest.raises(ConfigError):
        DeviceConfig(num_sms=0)
    with pytest.raises(ConfigError):
        DeviceConfig(global_bandwidth_gbps=0)


def test_with_timings_swaps_only_timings():
    custom = CalibratedTimings(atomic_ns=999)
    cfg = get_preset("gtx280").with_timings(custom)
    assert cfg.timings.atomic_ns == 999
    assert cfg.num_sms == 30


@given(
    threads=st.integers(1, 512),
    shared=st.integers(0, 16 * 1024),
)
def test_occupancy_never_exceeds_resources(threads, shared):
    cfg = get_preset("gtx280")
    occ = cfg.blocks_per_sm(threads, shared_mem_per_block=shared)
    assert 0 <= occ <= cfg.max_blocks_per_sm
    assert occ * threads <= cfg.max_threads_per_sm
    if shared > 0:
        assert occ * shared <= cfg.shared_mem_per_sm
