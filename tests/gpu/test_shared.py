"""Tests for per-block shared memory."""

import numpy as np
import pytest

from repro.errors import MemoryError_
from repro.gpu.context import BlockCtx
from repro.gpu.device import Device
from repro.gpu.host import Host
from repro.gpu.kernel import KernelSpec
from repro.gpu.shared import SharedMemory


class TestSharedMemoryUnit:
    def test_alloc_and_get(self):
        sm = SharedMemory("b0", 1024)
        arr = sm.alloc("tile", 16, np.float64)
        assert arr.shape == (16,)
        assert sm.get("tile") is arr
        assert "tile" in sm
        assert sm.used_bytes == 128

    def test_budget_enforced(self):
        sm = SharedMemory("b0", 100)
        with pytest.raises(MemoryError_, match="budget"):
            sm.alloc("big", 100, np.float64)  # 800 B > 100 B

    def test_duplicate_rejected(self):
        sm = SharedMemory("b0", 1024)
        sm.alloc("x", 4)
        with pytest.raises(MemoryError_):
            sm.alloc("x", 4)

    def test_unknown_get_rejected(self):
        with pytest.raises(MemoryError_):
            SharedMemory("b0", 64).get("nope")


class TestSharedThroughContext:
    def test_access_costs(self):
        device = Device()
        ctx = BlockCtx(device, "k", 0, 1, 64)
        tile = ctx.shared_alloc("tile", 8)
        values = []

        def block():
            yield from ctx.swrite(tile, 0, 2.5)
            v = yield from ctx.sread(tile, 0)
            values.append(v)

        device.engine.spawn(block())
        total = device.run()
        assert total == 2 * device.config.timings.shared_access_ns
        assert values == [2.5]
        # Shared access is much cheaper than global (paper §2).
        assert (
            device.config.timings.shared_access_ns
            < device.config.timings.global_read_ns / 3
        )

    def test_budget_comes_from_kernel_spec(self):
        """A kernel that requested 256 B of shared memory cannot allocate
        more — the launch-time contract, enforced."""
        device = Device()
        host = Host(device)
        failures = []

        def program(ctx):
            ctx.shared_alloc("small", 16, np.float64)  # 128 B: fits
            try:
                ctx.shared_alloc("big", 32, np.float64)  # 256 more: no
            except MemoryError_ as exc:
                failures.append(str(exc))
            yield from ctx.compute(10)

        spec = KernelSpec(
            "k", program, grid_blocks=1, block_threads=32,
            shared_mem_per_block=256,
        )

        def host_program():
            yield from host.launch(spec)
            yield from host.synchronize()

        device.engine.spawn(host_program(), "host")
        device.run()
        assert len(failures) == 1

    def test_blocks_have_private_scratchpads(self):
        device = Device()
        host = Host(device)
        sums = {}

        def program(ctx):
            tile = ctx.shared_alloc("tile", 4)
            yield from ctx.swrite(tile, 0, float(ctx.block_id))
            v = yield from ctx.sread(tile, 0)
            sums[ctx.block_id] = v

        spec = KernelSpec(
            "k", program, grid_blocks=4, block_threads=32,
            shared_mem_per_block=64,
        )

        def host_program():
            yield from host.launch(spec)
            yield from host.synchronize()

        device.engine.spawn(host_program(), "host")
        device.run()
        assert sums == {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0}
