"""Tests for 2-D grid/block dimensions (paper Figs. 6/9 indexing)."""

import pytest

from repro.errors import LaunchError
from repro.gpu.device import Device
from repro.gpu.host import Host
from repro.gpu.kernel import KernelSpec


def run_kernel(spec):
    device = Device()
    host = Host(device)

    def host_program():
        yield from host.launch(spec)
        yield from host.synchronize()

    device.engine.spawn(host_program(), "host")
    device.run()
    return device


def test_dim3_constructor_linearizes():
    spec = KernelSpec.dim3("k", lambda ctx: iter(()), grid=(3, 4), block=(16, 8))
    assert spec.grid_blocks == 12
    assert spec.block_threads == 128
    assert spec.effective_grid_dim == (3, 4)
    assert spec.effective_block_dim == (16, 8)


def test_one_d_defaults():
    spec = KernelSpec("k", lambda ctx: iter(()), grid_blocks=6, block_threads=64)
    assert spec.effective_grid_dim == (6, 1)
    assert spec.effective_block_dim == (64, 1)


def test_dim_validation():
    with pytest.raises(LaunchError, match="multiply out"):
        KernelSpec(
            "k", lambda ctx: iter(()), grid_blocks=5, block_threads=32,
            grid_dim=(2, 2),
        )
    with pytest.raises(LaunchError, match="positive"):
        KernelSpec(
            "k", lambda ctx: iter(()), grid_blocks=4, block_threads=32,
            grid_dim=(4, 0),
        )


def test_paper_fig9_linearization_through_kernel():
    """bid == blockIdx.x * gridDim.y + blockIdx.y for every block."""
    seen = {}

    def program(ctx):
        seen[ctx.block_id] = (ctx.block_idx, ctx.grid_dim, ctx.block_dim)
        yield from ctx.compute(10)

    spec = KernelSpec.dim3("k", program, grid=(3, 4), block=(8, 8))
    run_kernel(spec)
    assert len(seen) == 12
    for bid, (idx, grid_dim, block_dim) in seen.items():
        bx, by = idx
        assert bid == bx * grid_dim[1] + by
        assert 0 <= bx < 3 and 0 <= by < 4
        assert block_dim == (8, 8)
    # Every (bx, by) pair appears exactly once.
    assert len({idx for idx, _g, _b in seen.values()}) == 12


def test_2d_grid_works_with_device_barrier():
    from repro.algorithms import MeanMicrobench
    from repro.sync import get_strategy

    device = Device()
    host = Host(device)
    micro = MeanMicrobench(rounds=4, num_blocks_hint=12, threads_per_block=64)
    micro.reset()
    strategy = get_strategy("gpu-lockfree")
    strategy.prepare(device, 12)

    def program(ctx):
        for r in range(4):
            yield from ctx.compute(
                micro.round_cost(r, ctx.block_id, 12),
                micro.round_work(r, ctx.block_id, 12),
            )
            yield from strategy.barrier(ctx, r)

    spec = KernelSpec.dim3(
        "k", program, grid=(4, 3), block=(8, 8),
        shared_mem_per_block=device.config.shared_mem_per_sm,
    )

    def host_program():
        yield from host.launch(spec)
        yield from host.synchronize()

    device.engine.spawn(host_program(), "host")
    device.run()
    micro.verify()
