"""Tests for per-SM block placement."""

import pytest

from repro.errors import SimulationError
from repro.gpu.device import Device
from repro.gpu.host import Host
from repro.gpu.kernel import KernelSpec
from repro.gpu.scheduler import SmPlacement


def run_kernel(blocks, shared=0, cost=500):
    device = Device()
    host = Host(device)
    sms_seen = {}

    def program(ctx):
        sms_seen[ctx.block_id] = ctx.sm_id
        yield from ctx.compute(cost)

    spec = KernelSpec(
        "k", program, grid_blocks=blocks, block_threads=64,
        shared_mem_per_block=shared,
    )

    def host_program():
        yield from host.launch(spec)
        yield from host.synchronize()

    device.engine.spawn(host_program(), "host")
    device.run()
    return device, sms_seen


class TestPlacementThroughKernels:
    def test_one_block_per_sm_under_full_shared_memory(self):
        """The paper's co-residency trick: 30 blocks land on 30 distinct SMs."""
        device, sms = run_kernel(30, shared=Device().config.shared_mem_per_sm)
        assert sorted(sms.values()) == list(range(30))

    def test_waves_reuse_freed_sms(self):
        """90 blocks at 1/SM: three waves, each SM hosts exactly 3 blocks."""
        device, sms = run_kernel(90, shared=Device().config.shared_mem_per_sm)
        from collections import Counter

        counts = Counter(sms.values())
        assert all(counts[sm] == 3 for sm in range(30))

    def test_placement_recorded_on_device(self):
        device, _sms = run_kernel(8)
        placement = device.placements["k"]
        assert len(placement.placements) == 8
        # All blocks released: no SM still loaded.
        assert all(c == 0 for c in placement.resident_counts)

    def test_blocks_spread_before_stacking(self):
        """With occupancy > 1, the first wave still spreads across SMs."""
        device, sms = run_kernel(30)  # no shared memory: high occupancy
        assert sorted(sms.values()) == list(range(30))


class TestSmPlacementUnit:
    def test_least_loaded_placement(self):
        p = SmPlacement("k", num_sms=3, per_sm=2)
        assert [p.place(i) for i in range(6)] == [0, 1, 2, 0, 1, 2]
        assert p.resident_counts == [2, 2, 2]

    def test_release_frees_slot(self):
        p = SmPlacement("k", num_sms=2, per_sm=1)
        p.place(0)
        p.place(1)
        p.release(0)
        assert p.place(2) == 0  # reuses the freed SM

    def test_double_place_rejected(self):
        p = SmPlacement("k", num_sms=2, per_sm=1)
        p.place(0)
        with pytest.raises(SimulationError):
            p.place(0)

    def test_release_without_place_rejected(self):
        p = SmPlacement("k", num_sms=2, per_sm=1)
        with pytest.raises(SimulationError):
            p.release(5)

    def test_overflow_detected(self):
        p = SmPlacement("k", num_sms=1, per_sm=1)
        p.place(0)
        with pytest.raises(SimulationError):
            p.place(1)

    def test_per_sm_validation(self):
        with pytest.raises(SimulationError):
            SmPlacement("k", num_sms=2, per_sm=0)
