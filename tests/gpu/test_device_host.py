"""Tests for kernel launch, streams, pipelining, occupancy and deadlock."""

import numpy as np
import pytest

from repro.errors import DeadlockError, OccupancyError
from repro.gpu.device import Device
from repro.gpu.host import Host
from repro.gpu.kernel import KernelSpec
from repro.model.kernel_time import cpu_explicit_time, cpu_implicit_time


def noop_program(ctx):
    yield from ctx.compute(500)


def make_spec(name="k", blocks=4, threads=64, shared=0, program=noop_program, **params):
    return KernelSpec(
        name=name,
        program=program,
        grid_blocks=blocks,
        block_threads=threads,
        shared_mem_per_block=shared,
        params=params,
    )


def launch_and_run(device, host, specs, explicit=False):
    def host_program():
        for spec in specs:
            yield from host.launch(spec)
            if explicit:
                yield from host.synchronize()
        yield from host.synchronize()

    device.engine.spawn(host_program(), "host")
    return device.run()


class TestLaunchGeometry:
    def test_single_launch_time(self):
        device = Device()
        host = Host(device)
        t = device.config.timings
        total = launch_and_run(device, host, [make_spec()])
        assert total == (
            t.host_launch_ns + t.kernel_setup_ns + 500 + t.kernel_teardown_ns
        )

    def test_implicit_pipelining_matches_eq4(self):
        device = Device()
        host = Host(device)
        rounds = 5
        total = launch_and_run(
            device, host, [make_spec(name=f"k{i}") for i in range(rounds)]
        )
        assert total == cpu_implicit_time(rounds, 500, device.config.timings)

    def test_explicit_serialization_matches_eq3(self):
        device = Device()
        host = Host(device)
        rounds = 5
        total = launch_and_run(
            device,
            host,
            [make_spec(name=f"k{i}") for i in range(rounds)],
            explicit=True,
        )
        assert total == cpu_explicit_time(rounds, 500, device.config.timings)

    def test_stream_order_preserved(self):
        device = Device()
        host = Host(device)
        order = []

        def program(ctx, tag):
            yield from ctx.compute(100, lambda: order.append(tag))

        specs = [
            make_spec(name=f"k{i}", program=program, tag=i) for i in range(4)
        ]
        launch_and_run(device, host, specs)
        # Four blocks per kernel, kernels strictly in stream order.
        assert order == [0] * 4 + [1] * 4 + [2] * 4 + [3] * 4

    def test_kernel_handles_record_times(self):
        device = Device()
        host = Host(device)
        launch_and_run(device, host, [make_spec()])
        (h,) = host.launches
        t = device.config.timings
        assert h.issued_ns == 0
        assert h.start_ns == t.host_launch_ns
        assert h.done
        assert h.duration_ns == t.kernel_setup_ns + 500 + t.kernel_teardown_ns


class TestBlockScheduling:
    def test_all_blocks_execute(self):
        device = Device()
        host = Host(device)
        arr = device.memory.alloc("hits", 64, dtype=np.int64)

        def program(ctx):
            yield from ctx.compute(100, lambda: arr.store(ctx.block_id, 1))

        launch_and_run(device, host, [make_spec(blocks=64, program=program)])
        assert int(arr.data.sum()) == 64

    def test_excess_blocks_queue_on_slots(self):
        """More blocks than co-resident capacity: waves, not failure —
        as long as no device barrier needs them all resident."""
        device = Device()
        host = Host(device)
        cfg = device.config
        # Full shared memory → 1 block/SM → 30 co-resident.
        spec = make_spec(blocks=90, shared=cfg.shared_mem_per_sm)
        t = cfg.timings
        total = launch_and_run(device, host, [spec])
        # Three waves of 30 blocks, 500 ns each.
        assert total == t.host_launch_ns + t.kernel_setup_ns + 3 * 500 + t.kernel_teardown_ns

    def test_impossible_kernel_raises_occupancy_error(self):
        device = Device()
        host = Host(device)
        spec = make_spec(threads=64, shared=device.config.shared_mem_per_sm + 1)

        def host_program():
            yield from host.launch(spec)

        device.engine.spawn(host_program(), "host")
        with pytest.raises(Exception) as exc:
            device.run()
        assert isinstance(exc.value.__cause__ or exc.value, OccupancyError) or (
            "exceeds" in str(exc.value)
        )

    def test_too_many_threads_rejected(self):
        device = Device()
        spec = make_spec(threads=513)
        with pytest.raises(OccupancyError):
            device.scheduler.validate(spec)


class TestDeadlock:
    def test_oversubscribed_spin_barrier_deadlocks(self):
        """The paper's §5 hazard, reproduced mechanistically.

        31 blocks on 30 SMs with a naive device-side spin barrier: the 30
        resident blocks spin for the 31st, which can never get a slot
        because blocks are non-preemptive.
        """
        device = Device()
        host = Host(device)
        cfg = device.config
        arrivals = device.memory.alloc("arrivals", 1, dtype=np.int64)
        n = cfg.num_sms + 1

        def naive_barrier_program(ctx):
            yield from ctx.atomic_add(arrivals, 0, 1)
            yield from ctx.spin_until(
                arrivals, lambda: arrivals.data[0] >= n, "naive barrier"
            )

        spec = make_spec(
            blocks=n,
            shared=cfg.shared_mem_per_sm,  # one block per SM
            program=naive_barrier_program,
        )
        device.engine.spawn(
            (e for gen in [host.launch(spec), host.synchronize()] for e in gen),
            "host",
        )
        with pytest.raises(DeadlockError) as exc:
            device.run()
        blocked = dict(exc.value.blocked)
        # The 30 resident blocks are spinning; the extra one waits for a slot.
        assert any("naive barrier" in reason for reason in blocked.values())
        assert any("SM slot" in reason for reason in blocked.values())

    def test_same_grid_fits_when_it_matches_sm_count(self):
        device = Device()
        host = Host(device)
        cfg = device.config
        arrivals = device.memory.alloc("arrivals", 1, dtype=np.int64)
        n = cfg.num_sms

        def barrier_program(ctx):
            yield from ctx.atomic_add(arrivals, 0, 1)
            yield from ctx.spin_until(
                arrivals, lambda: arrivals.data[0] >= n, "barrier"
            )

        spec = make_spec(
            blocks=n, shared=cfg.shared_mem_per_sm, program=barrier_program
        )
        launch_and_run(device, host, [spec])
        assert arrivals.data[0] == n
