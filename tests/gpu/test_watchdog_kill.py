"""Tests for the watchdog 'kill' mode: the device survives, the host
observes the error — exactly the developer experience on a real
display-attached GPU."""

import dataclasses

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.gpu.config import DeviceConfig
from repro.gpu.presets import get_preset
from repro.gpu.device import Device
from repro.gpu.host import Host
from repro.gpu.kernel import KernelSpec


def kill_config(watchdog_ns=1_000_000):
    return dataclasses.replace(
        get_preset("gtx280"), watchdog_ns=watchdog_ns, watchdog_action="kill"
    )


def naive_oversubscribed_spec(device, n):
    arrivals = device.memory.alloc("arrivals", 1, dtype=np.int64)

    def naive_barrier(ctx):
        yield from ctx.atomic_add(arrivals, 0, 1)
        yield from ctx.spin_until(
            arrivals, lambda: arrivals.data[0] >= n, "naive barrier"
        )

    return KernelSpec(
        "unsafe", naive_barrier, grid_blocks=n, block_threads=64,
        shared_mem_per_block=device.config.shared_mem_per_sm,
    )


def test_killed_kernel_surfaces_as_host_error_not_exception():
    device = Device(kill_config())
    host = Host(device)
    n = device.config.num_sms + 1
    spec = naive_oversubscribed_spec(device, n)

    def host_program():
        yield from host.launch(spec)
        yield from host.synchronize()

    device.engine.spawn(host_program(), "host")
    device.run()  # completes: the device recovered
    error = host.get_last_error()
    assert error is not None and "watchdog" in error
    assert host.get_last_error() is None  # sticky error cleared
    (h,) = host.launches
    assert h.killed
    assert not h.done


def test_device_usable_after_kill():
    """After the driver kills a launch, later launches run normally."""
    device = Device(kill_config())
    host = Host(device)
    n = device.config.num_sms + 1
    bad = naive_oversubscribed_spec(device, n)
    ok_flag = device.memory.alloc("ok", 1, dtype=np.int64)

    def good_program(ctx):
        yield from ctx.compute(500, lambda: ok_flag.store(0, 1))

    good = KernelSpec("good", good_program, grid_blocks=4, block_threads=64)

    def host_program():
        yield from host.launch(bad)
        yield from host.synchronize()
        assert host.get_last_error() is not None
        yield from host.launch(good)
        yield from host.synchronize()

    device.engine.spawn(host_program(), "host")
    device.run()
    assert ok_flag.data[0] == 1
    assert host.last_error is None  # the good kernel set no error


def test_kill_frees_sm_slots():
    """The killed kernel's blocks held every SM; the next kernel must
    get them all back."""
    device = Device(kill_config(watchdog_ns=100_000))
    host = Host(device)
    n = device.config.num_sms + 1
    bad = naive_oversubscribed_spec(device, n)
    hits = device.memory.alloc("hits", 30, dtype=np.int64)

    def full_grid(ctx):
        yield from ctx.compute(100, lambda: hits.store(ctx.block_id, 1))

    good = KernelSpec(
        "fullgrid", full_grid, grid_blocks=30, block_threads=64,
        shared_mem_per_block=device.config.shared_mem_per_sm,
    )

    def host_program():
        yield from host.launch(bad)
        yield from host.launch(good)  # queued behind the doomed kernel
        yield from host.synchronize()

    device.engine.spawn(host_program(), "host")
    device.run()
    assert int(hits.data.sum()) == 30


def test_fast_kernels_never_killed():
    device = Device(kill_config(watchdog_ns=50_000))
    host = Host(device)

    def program(ctx):
        yield from ctx.compute(500)

    def host_program():
        for i in range(3):
            yield from host.launch(
                KernelSpec(f"k{i}", program, grid_blocks=2, block_threads=32)
            )
        yield from host.synchronize()

    device.engine.spawn(host_program(), "host")
    device.run()
    assert device.kernels_completed == 3
    assert host.last_error is None


def test_watchdog_action_validation():
    with pytest.raises(ConfigError):
        DeviceConfig(watchdog_action="explode")
