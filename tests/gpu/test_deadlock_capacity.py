"""Occupancy-deadlock behavior of every GPU barrier at the capacity edge.

Paper §5: blocks are non-preemptive and a device barrier claims the
whole SM, so co-resident capacity is one block per SM and any larger
grid can never synchronize.  For each device strategy, on a shrunken
4-SM device, this pins down all three layers of defense:

* **at capacity** the run completes and verifies;
* **over capacity** the launch guard (``validate_grid``) refuses with
  :class:`~repro.errors.OccupancyError` before anything runs;
* **guard bypassed** the engine itself starves and raises
  :class:`~repro.errors.DeadlockError` — the ground truth the guard
  predicts;
* the sanitizer's :func:`~repro.sanitize.check_occupancy` reports the
  same hazard statically, before the engine is ever started.
"""

import pytest

from repro.algorithms import MeanMicrobench
from repro.errors import DeadlockError, OccupancyError
from repro.gpu.config import DeviceConfig
from repro.harness.runner import run
from repro.sanitize import check_occupancy, sanitize_run
from repro.sync import get_strategy

GPU_STRATEGIES = ["gpu-simple", "gpu-tree-2", "gpu-tree-3", "gpu-lockfree"]

#: a small device so over-capacity grids stay cheap: capacity = 4 blocks.
SMALL = DeviceConfig(num_sms=4)
CAPACITY = SMALL.num_sms


def _micro(num_blocks: int) -> MeanMicrobench:
    return MeanMicrobench(
        rounds=2, num_blocks_hint=num_blocks, threads_per_block=64
    )


@pytest.mark.parametrize("name", GPU_STRATEGIES)
def test_runs_at_exact_capacity(name):
    result = run(
        _micro(CAPACITY),
        name,
        CAPACITY,
        threads_per_block=64,
        config=SMALL,
    )
    assert result.verified is True
    assert result.violations == 0


@pytest.mark.parametrize("name", GPU_STRATEGIES)
@pytest.mark.parametrize("blocks", [CAPACITY + 1, 2 * CAPACITY])
def test_over_capacity_is_refused_at_launch(name, blocks):
    with pytest.raises(OccupancyError):
        run(_micro(blocks), name, blocks, threads_per_block=64, config=SMALL)


@pytest.mark.parametrize("name", GPU_STRATEGIES)
@pytest.mark.parametrize("blocks", [CAPACITY + 1, 2 * CAPACITY])
def test_over_capacity_deadlocks_when_guard_bypassed(name, blocks):
    strategy = get_strategy(name)
    strategy.validate_grid = lambda *a, **k: None  # disarm the guard
    with pytest.raises(DeadlockError):
        run(
            _micro(blocks),
            strategy,
            blocks,
            threads_per_block=64,
            config=SMALL,
        )


@pytest.mark.parametrize("name", GPU_STRATEGIES)
@pytest.mark.parametrize("blocks", [CAPACITY + 1, 2 * CAPACITY])
def test_sanitizer_reports_occupancy_before_running(name, blocks):
    findings = check_occupancy(get_strategy(name), SMALL, blocks, 64)
    assert [f.kind for f in findings] == ["occupancy-deadlock"]
    assert findings[0].details["capacity"] == CAPACITY

    report = sanitize_run(
        _micro(blocks), name, blocks, config=SMALL, schedules=3
    )
    assert not report.clean
    assert report.schedules_run == 0  # flagged statically, nothing executed
    assert [f.kind for f in report.findings] == ["occupancy-deadlock"]


@pytest.mark.parametrize("name", GPU_STRATEGIES)
def test_sanitizer_clean_at_exact_capacity(name):
    assert check_occupancy(get_strategy(name), SMALL, CAPACITY, 64) == []
