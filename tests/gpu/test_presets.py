"""Tests for the device-preset registry and the presets it serves."""

import pytest

from repro.algorithms import MeanMicrobench
from repro.errors import ConfigError, OccupancyError
from repro.gpu.config import DeviceConfig
from repro.gpu.presets import get_preset, preset_names, register_preset
from repro.harness import run


# -- the registry -----------------------------------------------------------


def test_registry_lists_all_shipped_presets():
    assert preset_names() == [
        "dual_gpu",
        "fermi_class",
        "grid_sync",
        "gtx280",
        "riscv_cluster_1024",
    ]


def test_unknown_preset_is_a_typed_error_naming_the_choices():
    with pytest.raises(ConfigError, match="grid_sync"):
        get_preset("gtx-480")


def test_get_preset_returns_fresh_equal_configs():
    assert get_preset("gtx280") == get_preset("gtx280")
    assert get_preset("gtx280") == DeviceConfig()


def test_timings_override_is_keyword_only():
    slow = get_preset("gtx280").timings
    cfg = get_preset("fermi_class", timings=slow)
    assert cfg.timings == slow
    assert cfg.num_sms == 15  # everything else untouched
    with pytest.raises(TypeError):
        get_preset("fermi_class", slow)  # positional timings refused


def test_register_preset_extends_the_registry():
    register_preset("test-tiny", lambda: DeviceConfig(num_sms=2))
    try:
        assert get_preset("test-tiny").num_sms == 2
        assert "test-tiny" in preset_names()
    finally:
        from repro.gpu import presets

        del presets._REGISTRY["test-tiny"]


# -- deprecation shims ------------------------------------------------------


def test_gtx280_shim_warns_and_forwards():
    from repro.gpu.config import gtx280

    with pytest.warns(DeprecationWarning, match="get_preset"):
        cfg = gtx280()
    assert cfg == get_preset("gtx280")


def test_fermi_class_shim_warns_and_forwards():
    from repro.gpu.presets import fermi_class

    with pytest.warns(DeprecationWarning, match="get_preset"):
        cfg = fermi_class()
    assert cfg == get_preset("fermi_class")


# -- fermi_class ------------------------------------------------------------


def test_fermi_preset_shape():
    cfg = get_preset("fermi_class")
    assert cfg.num_sms == 15
    assert cfg.total_sps == 480
    assert cfg.shared_mem_per_sm == 48 * 1024
    assert cfg.max_threads_per_block == 1024
    assert cfg.timings.atomic_ns < get_preset("gtx280").timings.atomic_ns


def test_fermi_runs_the_suite():
    micro = MeanMicrobench(rounds=10, num_blocks_hint=15)
    for strategy in ("cpu-implicit", "gpu-simple", "gpu-lockfree"):
        result = run(micro, strategy, 15, config=get_preset("fermi_class"))
        assert result.verified is True, strategy


def test_fermi_grid_limit_is_its_sm_count():
    micro = MeanMicrobench(rounds=5, num_blocks_hint=16)
    with pytest.raises(OccupancyError):
        run(micro, "gpu-lockfree", 16, config=get_preset("fermi_class"))


def test_simple_barrier_is_cheap_on_fermi():
    """The generations-study core: cheap atomics make the atomic-counter
    barrier competitive with lock-free."""
    from repro.harness.phases import compute_only, sync_time_ns

    cfg = get_preset("fermi_class")
    micro = MeanMicrobench(rounds=20, num_blocks_hint=15)
    null = compute_only(micro, 15, config=cfg)
    simple = sync_time_ns(run(micro, "gpu-simple", 15, config=cfg), null)
    lockfree = sync_time_ns(run(micro, "gpu-lockfree", 15, config=cfg), null)
    assert simple < 1.5 * lockfree  # within 50% — not the 4.7x of GT200


# -- grid_sync: cooperative co-residency ------------------------------------


def test_grid_sync_synchronizes_grids_larger_than_num_sms():
    cfg = get_preset("grid_sync")
    assert cfg.topology.co_residency == "cooperative"
    blocks = cfg.num_sms + 16  # would deadlock on every exclusive preset
    micro = MeanMicrobench(rounds=5, num_blocks_hint=blocks)
    result = run(micro, "gpu-simple", blocks, config=cfg)
    assert result.verified is True
    assert result.violations == 0


def test_gtx280_still_refuses_grids_beyond_its_sms():
    micro = MeanMicrobench(rounds=5, num_blocks_hint=31)
    with pytest.raises(OccupancyError):
        run(micro, "gpu-simple", 31, config=get_preset("gtx280"))


def test_grid_sync_validates_against_actual_block_shape_capacity():
    # 512-thread blocks: 2048 threads/SM / 512 = 4 co-resident blocks
    # per SM, so 80 SMs hold 320 blocks — well under the topology's
    # 2560-block upper bound.  The cooperative launch check must refuse
    # a 400-block grid before the engine ever runs.
    cfg = get_preset("grid_sync")
    micro = MeanMicrobench(rounds=2, num_blocks_hint=400, threads_per_block=512)
    with pytest.raises(OccupancyError, match="co-resident capacity"):
        run(micro, "gpu-simple", 400, threads_per_block=512, config=cfg)


def test_device_barriers_request_no_shared_memory_under_cooperative():
    from repro.sync import get_strategy

    cfg = get_preset("grid_sync")
    assert get_strategy("gpu-simple").shared_mem_request(cfg) == 0
    exclusive = get_preset("gtx280")
    assert (
        get_strategy("gpu-simple").shared_mem_request(exclusive)
        == exclusive.shared_mem_per_sm
    )


# -- dual_gpu: modeled interconnect -----------------------------------------


def test_dual_gpu_runs_all_barriers_across_the_interconnect():
    cfg = get_preset("dual_gpu")
    micro = MeanMicrobench(rounds=5, num_blocks_hint=60)
    for strategy in ("gpu-simple", "gpu-tree-2", "gpu-lockfree"):
        result = run(micro, strategy, 60, config=cfg)
        assert result.verified is True, strategy
        assert result.violations == 0, strategy


def test_cross_device_arrivals_pay_the_interconnect_latency():
    # The same grid on the same hardware with a free interconnect must
    # finish strictly faster: every cross-device arrival in the real
    # preset carries crossing_ns of extra latency.
    from dataclasses import replace

    from repro.gpu.topology import Topology

    cfg = get_preset("dual_gpu")
    free = replace(
        cfg,
        topology=Topology(
            kind="multi-device",
            num_domains=2,
            co_residency="exclusive",
            crossing_ns=0,
        ),
    )
    micro = MeanMicrobench(rounds=5, num_blocks_hint=8)
    paid = run(micro, "gpu-simple", 8, config=cfg).total_ns
    gratis = run(micro, "gpu-simple", 8, config=free).total_ns
    assert paid > gratis


# -- riscv_cluster_1024 ------------------------------------------------------


def test_riscv_cluster_shape():
    cfg = get_preset("riscv_cluster_1024")
    assert cfg.total_sps == 1024  # 64 clusters x 16 cores
    assert cfg.topology.kind == "cluster"
    assert cfg.topology.num_domains == 16
    assert cfg.num_sms % cfg.topology.num_domains == 0


def test_riscv_cluster_runs_the_hierarchical_barrier():
    cfg = get_preset("riscv_cluster_1024")
    micro = MeanMicrobench(rounds=5, num_blocks_hint=64, threads_per_block=64)
    result = run(
        micro, "gpu-cluster-tree", 64, threads_per_block=64, config=cfg
    )
    assert result.verified is True
    assert result.violations == 0
