"""Tests for device presets beyond the GTX 280."""

from repro.gpu.config import gtx280
from repro.gpu.presets import fermi_class
from repro.harness import run
from repro.algorithms import MeanMicrobench


def test_fermi_preset_shape():
    cfg = fermi_class()
    assert cfg.num_sms == 15
    assert cfg.total_sps == 480
    assert cfg.shared_mem_per_sm == 48 * 1024
    assert cfg.max_threads_per_block == 1024
    assert cfg.timings.atomic_ns < gtx280().timings.atomic_ns


def test_fermi_runs_the_suite():
    micro = MeanMicrobench(rounds=10, num_blocks_hint=15)
    for strategy in ("cpu-implicit", "gpu-simple", "gpu-lockfree"):
        result = run(micro, strategy, 15, config=fermi_class())
        assert result.verified is True, strategy


def test_fermi_grid_limit_is_its_sm_count():
    from repro.errors import OccupancyError

    import pytest

    micro = MeanMicrobench(rounds=5, num_blocks_hint=16)
    with pytest.raises(OccupancyError):
        run(micro, "gpu-lockfree", 16, config=fermi_class())


def test_simple_barrier_is_cheap_on_fermi():
    """The generations-study core: cheap atomics make the atomic-counter
    barrier competitive with lock-free."""
    from repro.harness.phases import compute_only, sync_time_ns

    cfg = fermi_class()
    micro = MeanMicrobench(rounds=20, num_blocks_hint=15)
    null = compute_only(micro, 15, config=cfg)
    simple = sync_time_ns(run(micro, "gpu-simple", 15, config=cfg), null)
    lockfree = sync_time_ns(run(micro, "gpu-lockfree", 15, config=cfg), null)
    assert simple < 1.5 * lockfree  # within 50% — not the 4.7x of GT200
