"""The shared static/dynamic finding-code registry."""

import pytest

from repro.findings import (
    DYNAMIC_CODES,
    FINDING_CODES,
    SEVERITIES,
    STATIC_CODES,
    by_name,
    format_finding,
    get_code,
)


def test_registry_covers_both_origins():
    assert len(STATIC_CODES) == 10
    assert len(DYNAMIC_CODES) == 8
    assert set(STATIC_CODES) | set(DYNAMIC_CODES) == set(FINDING_CODES)
    for code in STATIC_CODES:
        assert code.startswith("SC")
        assert FINDING_CODES[code].origin == "static"
    for code in DYNAMIC_CODES:
        assert code.startswith("DYN")
        assert FINDING_CODES[code].origin == "dynamic"


def test_every_entry_is_well_formed():
    for code, meta in FINDING_CODES.items():
        assert meta.code == code
        assert meta.severity in SEVERITIES
        assert meta.paper_ref.startswith("§")
        assert meta.summary and meta.remedy and meta.name


def test_related_links_resolve_and_cross_origins():
    for meta in FINDING_CODES.values():
        for other in meta.related:
            assert other in FINDING_CODES, f"{meta.code} links unknown {other}"
            assert FINDING_CODES[other].origin != meta.origin


def test_every_static_rule_links_a_dynamic_class():
    """Each SC bug rule must name the dynamic bug class it pre-empts.

    Advice-severity codes flag performance hazards, not bugs — there is
    no dynamic counterpart to link (the sanitizer only reports bugs).
    """
    for code in STATIC_CODES:
        meta = FINDING_CODES[code]
        if meta.severity == "advice":
            assert not meta.related, f"{code} is advice but links {meta.related}"
            continue
        assert meta.related, f"{code} has no dynamic link"


def test_lookup_helpers():
    assert get_code("SC001").name == "barrier-divergence"
    assert by_name("premature-release").code == "DYN004"
    # Name collisions resolve to the dynamic entry (sanitizer kinds are
    # looked up by name far more often).
    assert by_name("barrier-divergence").origin == "dynamic"
    with pytest.raises(KeyError):
        get_code("SC999")
    with pytest.raises(KeyError):
        by_name("no-such-finding")


def test_format_finding_shape():
    meta = get_code("SC002")
    line = format_finding(meta, "grid too big", suffix="in demo")
    assert line == (
        "[SC002 error] static-occupancy-violation: grid too big "
        "(paper §5; in demo)"
    )


def test_sanitizer_taxonomy_is_registry_backed():
    from repro.sanitize.report import BUG_CLASSES

    assert set(BUG_CLASSES) == {
        FINDING_CODES[c].name for c in DYNAMIC_CODES
    }
