"""Tests for the Markdown reproduction report (small problem sizes)."""

import pytest

from repro.algorithms import FFT, BitonicSort, SmithWaterman
from repro.harness import experiments
from repro.harness.paperreport import generate_report, render_markdown


@pytest.fixture
def small_sizes(monkeypatch):
    """Patch the experiment factories to small problems for test speed."""
    monkeypatch.setitem(
        experiments.ALGORITHM_FACTORIES, "fft", lambda: FFT(n=2**10)
    )
    monkeypatch.setitem(
        experiments.ALGORITHM_FACTORIES, "swat", lambda: SmithWaterman(96, 96)
    )
    monkeypatch.setitem(
        experiments.ALGORITHM_FACTORIES, "bitonic", lambda: BitonicSort(n=2**9)
    )


def test_generate_report_end_to_end(tmp_path, small_sizes):
    path = generate_report(
        tmp_path / "report.md", micro_rounds=30, fig11_blocks=[8, 23, 24, 30]
    )
    text = path.read_text()
    assert "# Reproduction report" in text
    assert "## Claim checks" in text
    assert "table1/ordering" in text
    assert "## Fig. 11" in text
    assert "gpu-lockfree" in text
    # The micro-ratio claims must PASS even at reduced sizes (they are
    # per-round quantities).  Claim rows carry the "headline/" prefix;
    # the raw-numbers section repeats the key without a verdict.
    for line in text.splitlines():
        if "headline/micro_lockfree_vs_explicit" in line:
            assert "PASS" in line
        if "headline/micro_lockfree_vs_implicit" in line:
            assert "PASS" in line


def test_render_markdown_counts_verdicts():
    from repro.harness.claims import CheckResult
    from repro.harness.phases import Breakdown

    checks = [
        CheckResult("a", 1, 1, "exact", True, "x"),
        CheckResult("b", 1, 2, "exact", False, "y"),
    ]
    sweep = experiments.SweepResult(
        algorithm="micro", blocks=[4], totals={"gpu-lockfree": [100]},
        nulls=[40],
    )
    text = render_markdown(
        table1_results={"fft": Breakdown("cpu-implicit", 100, 80, 20)},
        fig11_sweep=sweep,
        fig15_results={"fft": {"gpu-lockfree": Breakdown("gpu-lockfree", 100, 90, 10)}},
        headline_results={"micro_lockfree_vs_implicit": 3.7},
        checks=checks,
        device_name="Test GPU",
        micro_rounds=10,
    )
    assert "1/2 passed" in text
    assert "**FAIL**" in text
    assert "Test GPU" in text
