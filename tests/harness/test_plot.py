"""Tests for ASCII plotting."""

import pytest

from repro.errors import ConfigError
from repro.harness import experiments
from repro.harness.plot import ascii_plot, plot_sweep


def test_single_series_renders():
    out = ascii_plot([1, 2, 3], {"a": [10, 20, 30]}, title="T", ylabel="ns")
    assert "T" in out
    assert "o a" in out  # legend with marker
    assert "ns" in out
    assert "30" in out and "10" in out  # y-axis labels


def test_flat_series_does_not_divide_by_zero():
    out = ascii_plot([1, 2], {"flat": [5, 5]})
    assert "o flat" in out


def test_multiple_series_get_distinct_markers():
    out = ascii_plot([1, 2], {"a": [1, 2], "b": [2, 1], "c": [1, 1]})
    assert "o a" in out and "x b" in out and "+ c" in out


def test_increasing_series_slopes_up():
    """The marker column for the max x must sit above that for min x."""
    out = ascii_plot([0, 10], {"up": [0, 100]}, width=20, height=10)
    rows = [line for line in out.splitlines() if "|" in line]
    first_col = min(i for i, r in enumerate(rows) if "o" in r.split("|")[1][:3])
    last_col = min(
        i for i, r in enumerate(rows) if "o" in r.split("|")[1][-3:]
    )
    assert last_col < first_col  # later x appears nearer the top


def test_validation():
    with pytest.raises(ConfigError):
        ascii_plot([1, 2], {})
    with pytest.raises(ConfigError):
        ascii_plot([1], {"a": [1]})
    with pytest.raises(ConfigError):
        ascii_plot([1, 2], {"a": [1]})
    with pytest.raises(ConfigError):
        ascii_plot([1, 2], {"a": [1, 2]}, width=4)


def test_plot_sweep_totals_and_sync():
    sweep = experiments.fig11(
        rounds=5, blocks=[2, 8], strategies=["gpu-simple", "gpu-lockfree"]
    )
    totals = plot_sweep(sweep)
    sync = plot_sweep(sweep, sync=True, title="custom")
    assert "total kernel time" in totals
    assert "custom" in sync
    assert "gpu-simple" in totals and "gpu-lockfree" in totals
