"""Tests for the plain-text report renderer."""

from repro.harness import experiments, report
from repro.harness.phases import Breakdown


def test_format_table_alignment():
    out = report.format_table(
        ["name", "value"], [["a", "1"], ["long-name", "22"]], title="T"
    )
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[2] and "value" in lines[2]
    assert all(len(line) == len(lines[2]) for line in lines[2:])


def test_render_table1():
    b = Breakdown(strategy="cpu-implicit", total_ns=2_000_000, compute_ns=1_000_000, sync_ns=1_000_000)
    out = report.render_table1({"fft": b})
    assert "Table 1" in out
    assert "50.0%" in out
    assert "fft" in out


def test_render_sweep_totals_and_sync():
    sweep = experiments.fig11(rounds=5, blocks=[2, 4], strategies=["gpu-lockfree"])
    totals = report.render_sweep_totals(sweep, "Fig. 11")
    sync = report.render_sweep_sync(sweep, "Fig. 14")
    assert "gpu-lockfree" in totals
    assert "total kernel time" in totals
    assert "synchronization time" in sync


def test_render_fig15():
    b = Breakdown(strategy="gpu-lockfree", total_ns=100, compute_ns=70, sync_ns=30)
    out = report.render_fig15({"swat": {"gpu-lockfree": b}})
    assert "70.0%" in out and "30.0%" in out


def test_render_headline():
    numbers = {
        "micro_lockfree_vs_explicit": 7.77,
        "micro_lockfree_vs_implicit": 3.73,
        "fft_improvement_pct": 12.8,
        "swat_improvement_pct": 36.7,
        "bitonic_improvement_pct": 43.0,
    }
    out = report.render_headline(numbers)
    assert "7.77x" in out and "7.8x" in out
    assert "36.7%" in out and "24%" in out


def test_render_model_validation():
    data = {"gpu-simple": {4: {"measured": 1310.0, "predicted": 1310.0}}}
    out = report.render_model_validation(data)
    assert "+0.0%" in out
    assert "gpu-simple" in out
