"""Tests for jitter and multi-run statistics."""

import pytest

from repro.algorithms import MeanMicrobench
from repro.errors import ConfigError
from repro.harness import run
from repro.harness.stats import repeat_run, summarize


@pytest.fixture
def micro():
    return MeanMicrobench(rounds=10, num_blocks_hint=8, threads_per_block=32)


class TestJitter:
    def test_zero_jitter_is_deterministic(self, micro):
        a = run(micro, "gpu-lockfree", 8)
        b = run(micro, "gpu-lockfree", 8, jitter_pct=0.0)
        assert a.total_ns == b.total_ns

    def test_same_seed_reproduces_exactly(self, micro):
        a = run(micro, "gpu-lockfree", 8, jitter_pct=5.0, jitter_seed=42)
        b = run(micro, "gpu-lockfree", 8, jitter_pct=5.0, jitter_seed=42)
        assert a.total_ns == b.total_ns

    def test_different_seeds_differ(self, micro):
        a = run(micro, "gpu-lockfree", 8, jitter_pct=5.0, jitter_seed=1)
        b = run(micro, "gpu-lockfree", 8, jitter_pct=5.0, jitter_seed=2)
        assert a.total_ns != b.total_ns

    def test_jitter_never_breaks_correctness(self, micro):
        result = run(micro, "gpu-simple", 8, jitter_pct=20.0, jitter_seed=7)
        assert result.verified is True
        assert result.violations == 0

    def test_jitter_applies_to_host_strategies_too(self, micro):
        a = run(micro, "cpu-implicit", 8, jitter_pct=5.0, jitter_seed=1)
        b = run(micro, "cpu-implicit", 8)
        assert a.total_ns != b.total_ns

    def test_negative_jitter_rejected(self, micro):
        with pytest.raises(ConfigError):
            run(micro, "gpu-lockfree", 8, jitter_pct=-1.0)


class TestRepeatRun:
    def test_three_run_average(self, micro):
        stats = repeat_run(micro, "gpu-lockfree", 8, repeats=3, jitter_pct=2.0)
        assert stats.repeats == 3
        assert stats.min_ns <= stats.mean_ns <= stats.max_ns
        assert len(stats.samples_ns) == 3

    def test_mean_close_to_nominal(self, micro):
        nominal = run(micro, "gpu-lockfree", 8).total_ns
        stats = repeat_run(micro, "gpu-lockfree", 8, repeats=5, jitter_pct=2.0)
        assert stats.mean_ns == pytest.approx(nominal, rel=0.05)

    def test_zero_jitter_zero_spread(self, micro):
        stats = repeat_run(micro, "gpu-lockfree", 8, repeats=3, jitter_pct=0.0)
        assert stats.std_ns == 0.0
        assert stats.ci95_ns == 0.0
        assert stats.relative_std == 0.0

    def test_statistics_fields(self, micro):
        stats = repeat_run(micro, "gpu-tree-2", 8, repeats=4, jitter_pct=3.0)
        assert stats.algorithm == "micro"
        assert stats.strategy == "gpu-tree-2"
        assert stats.mean_ms == pytest.approx(stats.mean_ns / 1e6)
        assert stats.ci95_ns > 0

    def test_repeats_validation(self, micro):
        with pytest.raises(ConfigError):
            repeat_run(micro, "gpu-lockfree", 8, repeats=0)


class TestSummarize:
    def test_requires_homogeneous_results(self, micro):
        a = run(micro, "gpu-lockfree", 8)
        b = run(micro, "gpu-simple", 8)
        with pytest.raises(ConfigError):
            summarize([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            summarize([])

    def test_single_result(self, micro):
        stats = summarize([run(micro, "gpu-lockfree", 8)])
        assert stats.std_ns == 0.0
        assert stats.repeats == 1
