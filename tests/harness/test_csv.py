"""Tests for CSV export of sweeps."""

from repro.harness import experiments


def test_to_csv_totals():
    sweep = experiments.fig11(rounds=5, blocks=[2, 4], strategies=["gpu-lockfree"])
    csv = sweep.to_csv()
    lines = csv.strip().splitlines()
    assert lines[0] == "blocks,gpu-lockfree"
    assert lines[1].startswith("2,")
    assert lines[2].startswith("4,")
    assert int(lines[1].split(",")[1]) == sweep.totals["gpu-lockfree"][0]


def test_to_csv_sync_mode():
    sweep = experiments.fig11(rounds=5, blocks=[4], strategies=["gpu-simple"])
    csv = sweep.to_csv(sync=True)
    value = int(csv.strip().splitlines()[1].split(",")[1])
    assert value == sweep.sync_series("gpu-simple")[0]


def test_to_csv_multiple_strategies_column_order():
    sweep = experiments.fig11(
        rounds=5, blocks=[4], strategies=["cpu-implicit", "gpu-lockfree"]
    )
    header = sweep.to_csv().splitlines()[0]
    assert header == "blocks,cpu-implicit,gpu-lockfree"
