"""Tests for the thin fig13/fig14 wrappers and sweep utilities at small size."""

import pytest

from repro.algorithms import FFT
from repro.harness import experiments


@pytest.fixture
def small_fft(monkeypatch):
    monkeypatch.setitem(
        experiments.ALGORITHM_FACTORIES, "fft", lambda: FFT(n=2**8)
    )


def test_fig13_and_fig14_share_the_measurement(small_fft):
    """They are the same experiment; equal inputs → equal sweeps."""
    a = experiments.fig13("fft", blocks=[4, 8])
    b = experiments.fig14("fft", blocks=[4, 8])
    assert a.blocks == b.blocks
    assert a.totals == b.totals
    assert a.nulls == b.nulls


def test_algorithm_sweep_step_parameter(small_fft):
    sweep = experiments.algorithm_sweep("fft", step=7)
    assert sweep.blocks == [9, 16, 23, 30]


def test_sweep_strategies_subset(small_fft):
    sweep = experiments.algorithm_sweep(
        "fft", blocks=[4], strategies=("gpu-lockfree",)
    )
    assert list(sweep.totals) == ["gpu-lockfree"]


def test_gpu_strategies_constant_is_consistent():
    assert set(experiments.ALL_STRATEGIES) == {"cpu-implicit"} | set(
        experiments.GPU_STRATEGIES
    )
