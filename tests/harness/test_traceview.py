"""Tests for Chrome-tracing export."""

import json

from repro.algorithms import MeanMicrobench
from repro.harness import run
from repro.harness.traceview import to_chrome_trace, write_chrome_trace
from repro.simcore import Trace


def test_basic_conversion():
    tr = Trace()
    tr.add("k/b0", "compute", 0, 500, round=0)
    tr.add("k/b0", "sync", 500, 900)
    out = to_chrome_trace(tr)
    events = [e for e in out["traceEvents"] if e["ph"] == "X"]
    metas = [e for e in out["traceEvents"] if e["ph"] == "M"]
    assert len(events) == 2
    assert len(metas) == 1
    assert metas[0]["args"]["name"] == "k/b0"
    compute = next(e for e in events if e["name"] == "compute")
    assert compute["ts"] == 0.0
    assert compute["dur"] == 0.5  # 500 ns = 0.5 µs
    assert compute["args"] == {"round": "0"}


def test_distinct_owners_get_distinct_tids():
    tr = Trace()
    tr.add("k/b0", "compute", 0, 1)
    tr.add("k/b1", "compute", 0, 1)
    out = to_chrome_trace(tr)
    tids = {e["tid"] for e in out["traceEvents"] if e["ph"] == "X"}
    assert len(tids) == 2


def test_write_roundtrip(tmp_path):
    micro = MeanMicrobench(rounds=3, num_blocks_hint=4, threads_per_block=16)
    result = run(micro, "gpu-lockfree", 4, keep_device=True)
    path = write_chrome_trace(result.device.trace, tmp_path / "trace.json")
    loaded = json.loads(path.read_text())
    events = [e for e in loaded["traceEvents"] if e["ph"] == "X"]
    # 4 blocks × 3 rounds of compute + sync (+ sync-overhead), plus
    # kernel setup/teardown spans.
    assert len(events) >= 4 * 3 * 2
    assert any(e["name"] == "kernel-setup" for e in events)
    assert all(e["dur"] >= 0 for e in events)
