"""Tests for the retry/degrade resilient runtime."""

import pytest

import repro
from repro.errors import ConfigError, RetryExhaustedError
from repro.faults import FaultPlan, FaultSpec
from repro.harness.resilient import (
    DegradePolicy,
    RetryPolicy,
    _run_resilient as run_resilient,
)
from repro.sanitize.sanitizer import SkewedMicrobench


def micro(rounds=4, blocks=8):
    return SkewedMicrobench(rounds=rounds, num_blocks_hint=blocks)


def test_policy_validation():
    with pytest.raises(ConfigError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ConfigError):
        RetryPolicy(backoff_factor=0.5)


def test_backoff_grows_exponentially():
    policy = RetryPolicy(backoff_ns=100, backoff_factor=2.0)
    assert [policy.backoff_for(a) for a in (1, 2, 3)] == [100, 200, 400]


def test_clean_run_passes_through_untouched():
    result = run_resilient(micro(), "gpu-lockfree", 8)
    assert result.verified is True
    assert result.attempts == 1
    assert result.degraded is False
    assert result.retry_overhead_ns == 0
    assert result.recovery == []
    assert result.recovered is False


def test_transient_kill_recovered_by_retry():
    plan = FaultPlan([FaultSpec("driver-kill", at_ns=5_000)])
    result = run_resilient(micro(), "gpu-lockfree", 8, faults=plan)
    assert result.verified is True
    assert result.attempts == 2
    assert result.degraded is False
    assert result.retry_overhead_ns == RetryPolicy().backoff_ns
    assert [e.kind for e in result.recovery] == ["retry"]
    assert result.recovered is True


def test_persistent_hang_degrades_to_host_barrier():
    plan = FaultPlan([FaultSpec("hang", block=2, round=1)])
    result = run_resilient(micro(), "gpu-lockfree", 8, faults=plan)
    assert result.verified is True
    assert result.degraded is True
    assert result.degraded_from == "gpu-lockfree"
    assert result.strategy == "cpu-implicit"
    kinds = [e.kind for e in result.recovery]
    assert kinds == ["retry", "retry", "degrade"]
    assert result.attempts == 4  # 3 device tries + the fallback
    # every device attempt re-fired the hang
    assert result.faults_fired == 3


def test_degrade_result_includes_retry_overhead_in_total():
    plan = FaultPlan([FaultSpec("hang", block=0, round=0)])
    policy = RetryPolicy(max_attempts=2, backoff_ns=1_000)
    result = run_resilient(
        micro(), "gpu-simple", 8, retry=policy, faults=plan
    )
    assert result.degraded is True
    assert result.retry_overhead_ns == 1_000
    assert result.total_ns > result.retry_overhead_ns


def test_degradation_disabled_raises_exhausted_with_history():
    plan = FaultPlan([FaultSpec("hang", block=1, round=0)])
    with pytest.raises(RetryExhaustedError) as info:
        run_resilient(
            micro(),
            "gpu-lockfree",
            8,
            retry=RetryPolicy(max_attempts=2),
            degrade=DegradePolicy(enabled=False),
            faults=plan,
        )
    err = info.value
    assert err.strategy == "gpu-lockfree"
    assert err.attempts == 2
    assert len(err.history) == 2
    assert all("watchdog" in h for h in err.history)


def test_occupancy_error_degrades_immediately():
    """A grid that can never be co-resident skips the pointless retries
    and lands straight on the host barrier (which takes any size)."""
    result = run_resilient(micro(blocks=64), "gpu-lockfree", 64)
    assert result.verified is True
    assert result.degraded is True
    assert result.strategy == "cpu-implicit"
    assert result.attempts == 2  # one refusal + the fallback
    assert [e.kind for e in result.recovery] == ["degrade"]


def test_host_strategy_has_no_fallback():
    plan = FaultPlan([FaultSpec("driver-kill", at_ns=100)])
    with pytest.raises(RetryExhaustedError):
        run_resilient(
            micro(),
            "cpu-implicit",
            8,
            retry=RetryPolicy(max_attempts=1),
            faults=plan,
        )


def test_explicit_fallback_override():
    plan = FaultPlan([FaultSpec("hang", block=1, round=0)])
    result = run_resilient(
        micro(),
        "gpu-lockfree",
        8,
        retry=RetryPolicy(max_attempts=1),
        degrade=DegradePolicy(fallback="cpu-explicit"),
        faults=plan,
    )
    assert result.degraded is True
    assert result.strategy == "cpu-explicit"


def test_facade_routes_to_resilient_path():
    """repro.run(..., retry=/degrade=) reaches the same runtime."""
    plan = FaultPlan([FaultSpec("hang", block=2, round=1)])
    result = repro.run(
        micro(),
        "gpu-lockfree",
        num_blocks=8,
        faults=plan,
        degrade=DegradePolicy(),
    )
    assert result.verified is True
    assert result.degraded is True
    assert result.strategy == "cpu-implicit"


def test_run_resilient_shim_retired():
    # The PR-3 deprecation shim was removed after its grace period: the
    # public surface only exposes the repro.run facade now.
    assert not hasattr(repro, "run_resilient")
    assert not hasattr(repro.harness, "run_resilient")
