"""Tests for experiment persistence."""

import json

import pytest

from repro.errors import ExperimentError
from repro.harness import experiments
from repro.harness.store import SCHEMA_VERSION, load_sweep, save_sweep


@pytest.fixture
def sweep():
    return experiments.fig11(
        rounds=5, blocks=[2, 4], strategies=["gpu-lockfree"]
    )


def test_roundtrip(tmp_path, sweep):
    path = save_sweep(sweep, tmp_path / "sweep.json")
    loaded = load_sweep(path)
    assert loaded.algorithm == sweep.algorithm
    assert loaded.blocks == sweep.blocks
    assert loaded.totals == sweep.totals
    assert loaded.nulls == sweep.nulls
    assert loaded.sync_series("gpu-lockfree") == sweep.sync_series("gpu-lockfree")


def test_creates_parent_dirs(tmp_path, sweep):
    path = save_sweep(sweep, tmp_path / "a" / "b" / "sweep.json")
    assert path.exists()


def test_missing_file_rejected(tmp_path):
    with pytest.raises(ExperimentError, match="cannot read"):
        load_sweep(tmp_path / "nope.json")


def test_wrong_kind_rejected(tmp_path):
    p = tmp_path / "x.json"
    p.write_text(json.dumps({"schema": SCHEMA_VERSION, "kind": "other"}))
    with pytest.raises(ExperimentError, match="does not contain a sweep"):
        load_sweep(p)


def test_wrong_schema_rejected(tmp_path, sweep):
    path = save_sweep(sweep, tmp_path / "s.json")
    payload = json.loads(path.read_text())
    payload["schema"] = 99
    path.write_text(json.dumps(payload))
    with pytest.raises(ExperimentError, match="schema"):
        load_sweep(path)


def test_corrupt_lengths_rejected(tmp_path, sweep):
    path = save_sweep(sweep, tmp_path / "s.json")
    payload = json.loads(path.read_text())
    payload["totals"]["gpu-lockfree"].append(1)
    path.write_text(json.dumps(payload))
    with pytest.raises(ExperimentError, match="length"):
        load_sweep(path)
