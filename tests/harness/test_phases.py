"""Tests for the §7.3 phase-accounting methodology."""

import pytest

from repro.algorithms import MeanMicrobench
from repro.errors import ExperimentError
from repro.harness import run
from repro.harness.phases import breakdown, compute_only, sync_time_ns
from repro.model.barrier_costs import lockfree_cost


@pytest.fixture
def micro():
    return MeanMicrobench(rounds=20, num_blocks_hint=8, threads_per_block=32)


def test_compute_only_uses_null_strategy(micro):
    result = compute_only(micro, 8)
    assert result.strategy == "null"
    assert result.verified is None
    assert result.kernel_launches == 1


def test_sync_time_is_barrier_cost(micro):
    null = compute_only(micro, 8)
    result = run(micro, "gpu-lockfree", 8)
    sync = sync_time_ns(result, null)
    assert sync == 20 * lockfree_cost(8)


def test_sync_time_rejects_mismatched_blocks(micro):
    null = compute_only(micro, 8)
    result = run(micro, "gpu-lockfree", 4)
    with pytest.raises(ExperimentError):
        sync_time_ns(result, null)


def test_sync_time_rejects_mismatched_algorithms(micro):
    from repro.algorithms import FFT

    null = compute_only(FFT(n=64), 4)
    result = run(micro, "gpu-lockfree", 4)
    with pytest.raises(ExperimentError):
        sync_time_ns(result, null)


def test_breakdown_percentages_sum_to_100(micro):
    null = compute_only(micro, 8)
    b = breakdown(run(micro, "cpu-implicit", 8), null)
    assert b.compute_pct + b.sync_pct == pytest.approx(100.0)
    assert b.compute_ns + b.sync_ns == b.total_ns
    assert 0 < b.sync_pct < 100


def test_breakdown_orders_strategies(micro):
    """Implicit sync share must exceed lock-free's (Fig. 15's point)."""
    null = compute_only(micro, 8)
    implicit = breakdown(run(micro, "cpu-implicit", 8), null)
    lockfree = breakdown(run(micro, "gpu-lockfree", 8), null)
    assert implicit.sync_pct > lockfree.sync_pct
