"""Tests for the experiment runner."""

import pytest

from repro.algorithms import FFT, MeanMicrobench
from repro.errors import ConfigError, OccupancyError
from repro.harness import RaceMonitor, run
from repro.sync import GpuLockFreeSync


@pytest.fixture
def micro():
    return MeanMicrobench(rounds=10, num_blocks_hint=8, threads_per_block=32)


class TestRun:
    def test_device_strategy_single_launch(self, micro):
        result = run(micro, "gpu-lockfree", 8)
        assert result.kernel_launches == 1
        assert result.verified is True
        assert result.violations == 0
        assert result.rounds == 10

    def test_host_strategy_one_launch_per_round(self, micro):
        result = run(micro, "cpu-implicit", 8)
        assert result.kernel_launches == 10
        assert result.verified is True
        assert result.violations == 0

    def test_strategy_instance_accepted(self, micro):
        result = run(micro, GpuLockFreeSync(), 8)
        assert result.strategy == "gpu-lockfree"

    def test_lockfree_needs_no_atomics_but_simple_does(self, micro):
        assert run(micro, "gpu-lockfree", 8).atomic_ops == 0
        assert run(micro, "gpu-simple", 8).atomic_ops == 8 * 10

    def test_null_strategy_skips_verification(self, micro):
        result = run(micro, "null", 8, verify=True)
        assert result.verified is None

    def test_total_ms_conversion(self, micro):
        result = run(micro, "gpu-lockfree", 8)
        assert result.total_ms == pytest.approx(result.total_ns / 1e6)

    def test_keep_device_exposes_trace(self, micro):
        result = run(micro, "gpu-lockfree", 8, keep_device=True)
        assert result.device is not None
        assert len(result.device.trace.spans("sync")) == 8 * 10
        assert run(micro, "gpu-lockfree", 8).device is None

    def test_trace_phase_totals_populated(self, micro):
        result = run(micro, "gpu-simple", 8)
        assert result.trace_compute_ns == 8 * 10 * 500
        assert result.trace_sync_ns > 0

    def test_oversubscribed_device_grid_rejected_up_front(self, micro):
        with pytest.raises(OccupancyError, match="deadlock"):
            run(micro, "gpu-simple", 31)

    def test_host_strategy_allows_more_blocks_than_sms(self):
        micro = MeanMicrobench(rounds=3, num_blocks_hint=40, threads_per_block=16)
        result = run(micro, "cpu-implicit", 40)
        assert result.verified is True

    def test_too_many_threads_rejected(self, micro):
        with pytest.raises(ConfigError, match="threads"):
            run(micro, "gpu-simple", 4, threads_per_block=4096)

    def test_default_threads_from_algorithm(self):
        fft = FFT(n=64)
        result = run(fft, "gpu-lockfree", 4)
        assert result.threads_per_block == FFT.default_threads

    def test_runs_are_deterministic(self, micro):
        a = run(micro, "gpu-tree-2", 12)
        b = run(micro, "gpu-tree-2", 12)
        assert a.total_ns == b.total_ns

    def test_monitor_can_be_disabled(self, micro):
        result = run(micro, "gpu-lockfree", 8, monitor_races=False)
        assert result.violations == -1


class TestRaceMonitor:
    def test_clean_sequence(self):
        mon = RaceMonitor(rounds=3, num_blocks=2)
        for r in range(3):
            for b in range(2):
                mon.wrap(r, b, None)()
        assert mon.clean

    def test_detects_out_of_order_round(self):
        mon = RaceMonitor(rounds=2, num_blocks=2)
        mon.wrap(0, 0, None)()
        mon.wrap(1, 0, None)()  # block 0 races ahead of block 1's round 0
        assert not mon.clean
        assert mon.violations == [(1, 0, 1)]

    def test_wraps_real_work(self):
        mon = RaceMonitor(rounds=1, num_blocks=1)
        hits = []
        mon.wrap(0, 0, lambda: hits.append(1))()
        assert hits == [1]

    def test_broken_barrier_detected_through_simulator(self):
        """Under the null strategy with uneven compute, fast blocks enter
        later rounds while slow blocks lag — the monitor must see it."""

        class Uneven(MeanMicrobench):
            def round_cost(self, round_idx, block_id, num_blocks):
                return 100 * (1 + block_id)  # strongly skewed

        micro = Uneven(rounds=5, num_blocks_hint=6, threads_per_block=8)
        result = run(micro, "null", 6, verify=False)
        assert result.violations > 0
