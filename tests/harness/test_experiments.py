"""Smoke and shape tests for the experiment drivers (small configs)."""

import pytest

from repro.errors import ExperimentError
from repro.harness import experiments


def test_make_algorithm_known_names():
    assert experiments.make_algorithm("fft").name == "fft"
    assert experiments.make_algorithm("swat").name == "swat"
    assert experiments.make_algorithm("bitonic").name == "bitonic"


def test_make_algorithm_unknown_rejected():
    with pytest.raises(ExperimentError):
        experiments.make_algorithm("quicksort")


def test_fig11_small_sweep_shape():
    sweep = experiments.fig11(rounds=10, blocks=[2, 8, 16])
    assert sweep.blocks == [2, 8, 16]
    assert len(sweep.nulls) == 3
    for strat, series in sweep.totals.items():
        assert len(series) == 3, strat
    # CPU explicit must dominate everything at every point.
    for i in range(3):
        assert sweep.totals["cpu-explicit"][i] == max(
            s[i] for s in sweep.totals.values()
        )
    # GPU simple grows with blocks; lock-free stays flat.
    simple = sweep.sync_series("gpu-simple")
    assert simple[0] < simple[1] < simple[2]
    lockfree = sweep.sync_series("gpu-lockfree")
    assert lockfree[0] == lockfree[1] == lockfree[2]


def test_fig11_sync_series_matches_totals_minus_null():
    sweep = experiments.fig11(rounds=5, blocks=[4], strategies=["gpu-simple"])
    assert sweep.sync_series("gpu-simple") == [
        sweep.totals["gpu-simple"][0] - sweep.nulls[0]
    ]


def test_sweep_result_best():
    sweep = experiments.fig11(rounds=5, blocks=[2, 8], strategies=["cpu-implicit"])
    assert sweep.best("cpu-implicit") == min(sweep.totals["cpu-implicit"])


def test_model_validation_small():
    out = experiments.model_validation(blocks=[2, 8], rounds=5)
    assert set(out) == {"gpu-simple", "gpu-tree-2", "gpu-tree-3", "gpu-lockfree"}
    for strat, per_n in out.items():
        for n, pair in per_n.items():
            assert pair["measured"] <= pair["predicted"] * 1.01, (strat, n)
            assert pair["measured"] >= pair["predicted"] * 0.80, (strat, n)


def test_empty_block_sweep_rejected():
    with pytest.raises(ExperimentError):
        experiments.algorithm_sweep("fft", blocks=[])
