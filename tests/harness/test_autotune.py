"""Tests for empirical auto-tuning."""

import pytest

from repro.algorithms import FFT, MeanMicrobench, Reduction
from repro.errors import ConfigError
from repro.harness import run
from repro.harness.autotune import autotune, probe_barrier_cost
from repro.model.barrier_costs import lockfree_cost, simple_cost


class TestProbe:
    def test_probe_matches_known_costs(self):
        assert probe_barrier_cost("gpu-lockfree", 16) == lockfree_cost(16)
        assert probe_barrier_cost("gpu-simple", 16) == simple_cost(16)

    def test_probe_cpu_implicit(self):
        cost = probe_barrier_cost("cpu-implicit", 8, probe_rounds=10)
        # total-minus-null attributes (R-1)/R of the boundary per round.
        assert 5000 <= cost <= 6000

    def test_probe_validation(self):
        with pytest.raises(ConfigError):
            probe_barrier_cost("gpu-lockfree", 8, probe_rounds=0)


class TestAutotune:
    def test_picks_lockfree_for_sync_bound_workload(self):
        algo = Reduction(n=4096, num_blocks_hint=30)
        result = autotune(algo, 30)
        assert result.strategy == "gpu-lockfree"
        assert result.ranking()[0][0] == "gpu-lockfree"

    def test_picks_simple_for_tiny_grid(self):
        micro = MeanMicrobench(rounds=50, num_blocks_hint=2)
        result = autotune(micro, 2)
        assert result.strategy == "gpu-simple"

    def test_prediction_close_to_measurement(self):
        """The tuner's prediction for the winner must track a real run."""
        micro = MeanMicrobench(rounds=60, num_blocks_hint=16)
        result = autotune(micro, 16)
        measured = run(micro, result.strategy, 16).total_ns
        assert measured == pytest.approx(result.predicted_ns, rel=0.05)

    def test_tuner_choice_is_actually_fastest(self):
        """End-to-end: run every candidate; the tuner's pick wins."""
        micro = MeanMicrobench(rounds=40, num_blocks_hint=24)
        result = autotune(micro, 24)
        totals = {
            name: run(micro, name, 24).total_ns
            for name in result.candidates
        }
        assert min(totals, key=totals.get) == result.strategy

    def test_all_candidates_scored(self):
        micro = MeanMicrobench(rounds=10, num_blocks_hint=8)
        result = autotune(micro, 8, candidates=("gpu-simple", "gpu-lockfree"))
        assert set(result.candidates) == {"gpu-simple", "gpu-lockfree"}
        for cost, total in result.candidates.values():
            assert 0 < cost < total

    def test_empty_candidates_rejected(self):
        with pytest.raises(ConfigError):
            autotune(FFT(n=64), 4, candidates=())
