"""The figure drivers run unchanged against every registered preset.

This is the acceptance gate for the preset API: the experiment drivers
take a ``config`` and nothing else — no per-preset branches, no special
cases.  Each test sweeps tiny grids so the whole matrix stays fast.
"""

import pytest

from repro.gpu.presets import get_preset, preset_names
from repro.harness import experiments

#: small grids every preset can co-reside (the tightest limit is
#: fermi_class at 15 blocks).
BLOCKS = [2, 4]

#: one host barrier, one device barrier, and the hierarchical cluster
#: barrier — which must degenerate correctly on flat topologies.
STRATEGIES = ("cpu-implicit", "gpu-simple", "gpu-cluster-tree")


@pytest.mark.parametrize("name", preset_names())
def test_fig11_runs_on_every_preset(name):
    cfg = get_preset(name)
    sweep = experiments.fig11(
        config=cfg, rounds=3, blocks=BLOCKS, strategies=STRATEGIES
    )
    assert sweep.blocks == BLOCKS
    for strat in STRATEGIES:
        totals = sweep.totals[strat]
        assert len(totals) == len(BLOCKS)
        assert all(t > 0 for t in totals)


@pytest.mark.parametrize("name", preset_names())
def test_table1_runs_on_every_preset(name):
    cfg = get_preset(name)
    out = experiments.table1(config=cfg, num_blocks=4, algorithms=("fft",))
    assert out["fft"].total_ns > out["fft"].compute_ns > 0


@pytest.mark.parametrize("name", preset_names())
def test_fig13_14_sweep_runs_on_every_preset(name):
    cfg = get_preset(name)
    sweep = experiments.algorithm_sweep(
        "fft", config=cfg, blocks=BLOCKS, strategies=STRATEGIES
    )
    assert sweep.algorithm == "fft"
    # Fig. 14 reads the same sweep through the sync series.
    for strat in STRATEGIES:
        sync = sweep.sync_series(strat)
        assert len(sync) == len(BLOCKS)


@pytest.mark.parametrize("name", preset_names())
def test_fig15_runs_on_every_preset(name):
    cfg = get_preset(name)
    out = experiments.fig15(
        config=cfg, num_blocks=4, algorithms=("fft",), strategies=STRATEGIES
    )
    for strat in STRATEGIES:
        cell = out["fft"][strat]
        assert cell.total_ns >= cell.compute_ns > 0


def test_sweeps_embed_the_preset_device():
    # The device dict rides in every cell payload, so sweeps cached under
    # one preset can never be replayed as another's (see
    # tests/test_topology_serialization.py for the key property).
    cfg = get_preset("dual_gpu")
    sweep = experiments.fig11(
        config=cfg, rounds=2, blocks=[2], strategies=("gpu-simple",)
    )
    assert sweep.totals["gpu-simple"][0] > 0
