"""Tests for the CLI entry point (fast experiments only)."""

import json

import pytest

from repro.harness.cli import main


def test_models_command(capsys):
    assert main(["models"]) == 0
    out = capsys.readouterr().out
    assert "Eqs. 6/7/9" in out
    assert "gpu-lockfree" in out


def test_extensions_command(capsys):
    assert main(["extensions", "--rounds", "20"]) == 0
    out = capsys.readouterr().out
    assert "gpu-dissemination" in out
    assert "gpu-sense-reversal" in out


def test_fig11_command_with_rounds(capsys):
    assert main(["fig11", "--rounds", "5"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 11" in out
    assert "cpu-explicit" in out


def test_trace_command(tmp_path, capsys):
    out_file = tmp_path / "t.json"
    assert (
        main(
            ["trace", "--strategy", "gpu-simple", "--blocks", "4",
             "--out", str(out_file)]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "verified=True" in out
    data = json.loads(out_file.read_text())
    assert data["traceEvents"]


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_fig11_plot_flag(capsys):
    assert main(["fig11", "--rounds", "5", "--plot"]) == 0
    out = capsys.readouterr().out
    assert "sync time" in out  # the ASCII chart section
    assert "|" in out  # chart rails


def test_composition_command(capsys):
    assert main(["composition"]) == 0
    out = capsys.readouterr().out
    assert "Figs. 7/10" in out
    assert "gpu-simple" in out


def test_diff_command(tmp_path, capsys):
    out_dir = tmp_path / "sweeps"
    main(["fig11", "--rounds", "5", "--save-sweeps", str(out_dir)])
    capsys.readouterr()
    base = str(out_dir / "fig11.json")
    # Identical files: exit 0, no drift.
    assert main(["diff", "--baseline", base, "--current", base]) == 0
    assert "no drift" in capsys.readouterr().out
    # Tampered copy: exit 1, drift listed.
    import json

    payload = json.loads((out_dir / "fig11.json").read_text())
    payload["totals"]["cpu-implicit"][0] += 999
    tampered = tmp_path / "tampered.json"
    tampered.write_text(json.dumps(payload))
    assert main(["diff", "--baseline", base, "--current", str(tampered)]) == 1
    assert "drifted point" in capsys.readouterr().out


def test_diff_requires_paths():
    with pytest.raises(SystemExit):
        main(["diff"])


def test_save_sweeps_option(tmp_path, capsys):
    out_dir = tmp_path / "sweeps"
    assert main(["fig11", "--rounds", "5", "--save-sweeps", str(out_dir)]) == 0
    capsys.readouterr()
    assert (out_dir / "fig11.json").exists()
    assert (out_dir / "fig11.csv").exists()
    assert (out_dir / "fig11_sync.csv").exists()

    from repro.harness.store import load_sweep

    sweep = load_sweep(out_dir / "fig11.json")
    assert sweep.algorithm == "micro"
    assert len(sweep.blocks) == 30


def test_chaos_command_clean_exit(capsys):
    assert main(["chaos", "--strategy", "gpu-lockfree", "--plans", "6"]) == 0
    out = capsys.readouterr().out
    assert "chaos campaign: gpu-lockfree" in out
    assert "verdict      CLEAN" in out


def test_chaos_command_all_sweeps_device_and_host(capsys):
    assert main(["chaos", "--strategy", "all", "--plans", "3"]) == 0
    out = capsys.readouterr().out
    assert "gpu-simple" in out
    assert "cpu-implicit" in out


def test_chaos_command_unknown_strategy_fails(capsys):
    assert main(["chaos", "--strategy", "no-such", "--plans", "2"]) == 1
    out = capsys.readouterr().out
    assert "UNEXPLAINED" in out


def test_journal_flag_writes_journal(tmp_path, capsys):
    jdir = tmp_path / "journal"
    assert (
        main(["fig11", "--rounds", "5", "--journal",
              "--journal-dir", str(jdir)])
        == 0
    )
    journals = list(jdir.glob("*/journal.jsonl"))
    assert len(journals) == 1


def test_resume_flag_replays_bit_identical(tmp_path, capsys):
    jdir = tmp_path / "journal"
    argv = ["fig11", "--rounds", "5", "--journal", "--journal-dir", str(jdir)]
    assert main(argv) == 0
    first = capsys.readouterr().out
    # --resume with no run-id resumes whatever journal matches the batch.
    assert main(argv + ["--resume"]) == 0
    assert capsys.readouterr().out == first


def test_resume_wrong_run_id_is_typed(tmp_path, capsys):
    from repro.errors import ExecutorError

    jdir = tmp_path / "journal"
    with pytest.raises(ExecutorError, match="cannot resume"):
        main(["fig11", "--rounds", "5", "--journal-dir", str(jdir),
              "--resume", "0" * 16])


def test_interrupted_sweep_exits_130(tmp_path, capsys, monkeypatch):
    import signal

    from repro.parallel import Executor

    jdir = tmp_path / "journal"
    original = Executor.map

    def tripping_map(self, worker, payloads, *, resume=None):
        def tripwire(done, total, cached):
            if done == 3:
                signal.raise_signal(signal.SIGINT)

        self.progress = tripwire
        return original(self, worker, payloads, resume=resume)

    monkeypatch.setattr(Executor, "map", tripping_map)
    code = main(["fig11", "--rounds", "5", "--journal",
                 "--journal-dir", str(jdir)])
    assert code == 130
    err = capsys.readouterr().err
    assert "interrupted" in err
    assert "resume with: --resume" in err

    # The hint works: resuming completes the sweep cleanly.
    monkeypatch.setattr(Executor, "map", original)
    run_id = err.split("--resume")[-1].strip()
    assert main(["fig11", "--rounds", "5", "--journal-dir", str(jdir),
                 "--resume", run_id]) == 0


# -- the tune verb ------------------------------------------------------------


def test_tune_command_advisory_exits_zero(capsys):
    code = main(["tune", "--rounds", "100", "--blocks", "30",
                 "--strategy", "gpu-simple"])
    assert code == 0
    out = capsys.readouterr().out
    assert "recommended: gpu-lockfree" in out
    assert "[SC100 advice]" in out


def test_tune_strict_gates_on_suboptimal_strategy(capsys):
    assert main(["tune", "--rounds", "100", "--blocks", "30",
                 "--strategy", "gpu-simple", "--strict"]) == 1
    capsys.readouterr()
    assert main(["tune", "--rounds", "100", "--blocks", "30",
                 "--strategy", "gpu-lockfree", "--strict"]) == 0


def test_tune_recommendation_flips_with_preset(capsys):
    assert main(["tune", "--rounds", "100", "--blocks", "4",
                 "--strategy", "gpu-simple"]) == 0
    assert "matches the cost-model recommendation" in capsys.readouterr().out
    assert main(["tune", "--rounds", "100", "--blocks", "4",
                 "--strategy", "gpu-simple", "--preset", "dual_gpu"]) == 0
    assert "[SC100 advice]" in capsys.readouterr().out


def test_tune_json_envelope(capsys):
    assert main(["tune", "--rounds", "100", "--blocks", "30",
                 "--strategy", "gpu-simple", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["kind"] == "tune-report"
    assert payload["recommended"] == "gpu-lockfree"
    assert payload["advisory"]["code"] == "SC100"


def test_tune_measure_runs_the_sweep(capsys):
    assert main(["tune", "--rounds", "10", "--blocks", "4",
                 "--strategy", "gpu-lockfree", "--measure"]) == 0
    out = capsys.readouterr().out
    assert "measured sync overhead" in out


def test_tune_unknown_strategy_fails(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["tune", "--strategy", "gpu-sense-reversal"])
    assert "unmodeled" in str(exc.value)
