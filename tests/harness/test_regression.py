"""Tests for sweep regression comparison."""

import dataclasses

import pytest

from repro.errors import ExperimentError
from repro.harness import experiments
from repro.harness.regression import compare_sweeps


@pytest.fixture
def sweep():
    return experiments.fig11(
        rounds=5, blocks=[2, 8], strategies=["gpu-simple", "gpu-lockfree"]
    )


def test_identical_runs_have_zero_drift(sweep):
    rerun = experiments.fig11(
        rounds=5, blocks=[2, 8], strategies=["gpu-simple", "gpu-lockfree"]
    )
    assert compare_sweeps(sweep, rerun) == []


def test_detects_drifted_point(sweep):
    tampered = dataclasses.replace(
        sweep,
        totals={
            **sweep.totals,
            "gpu-simple": [sweep.totals["gpu-simple"][0] + 100,
                           sweep.totals["gpu-simple"][1]],
        },
    )
    drifts = compare_sweeps(sweep, tampered)
    assert len(drifts) == 1
    d = drifts[0]
    assert d.strategy == "gpu-simple"
    assert d.blocks == 2
    assert d.current_ns - d.baseline_ns == 100
    assert "gpu-simple @ 2 blocks" in str(d)


def test_tolerance_suppresses_small_drift(sweep):
    bumped = dataclasses.replace(
        sweep,
        nulls=[int(sweep.nulls[0] * 1.005), sweep.nulls[1]],
    )
    assert compare_sweeps(sweep, bumped, rel_tol=0.01) == []
    assert len(compare_sweeps(sweep, bumped, rel_tol=0.001)) == 1


def test_null_series_compared(sweep):
    bumped = dataclasses.replace(sweep, nulls=[0, sweep.nulls[1]])
    drifts = compare_sweeps(sweep, bumped)
    assert drifts[0].strategy == "<null>"


def test_structural_mismatches_rejected(sweep):
    other_algo = dataclasses.replace(sweep, algorithm="fft")
    with pytest.raises(ExperimentError, match="different experiments"):
        compare_sweeps(sweep, other_algo)
    other_blocks = dataclasses.replace(sweep, blocks=[2, 9])
    with pytest.raises(ExperimentError, match="block grids"):
        compare_sweeps(sweep, other_blocks)
    other_strats = dataclasses.replace(
        sweep, totals={"gpu-simple": sweep.totals["gpu-simple"]}
    )
    with pytest.raises(ExperimentError, match="strategy sets"):
        compare_sweeps(sweep, other_strats)
    with pytest.raises(ExperimentError, match="rel_tol"):
        compare_sweeps(sweep, sweep, rel_tol=-1)


def test_roundtrip_through_store_is_drift_free(tmp_path, sweep):
    from repro.harness.store import load_sweep, save_sweep

    path = save_sweep(sweep, tmp_path / "s.json")
    assert compare_sweeps(sweep, load_sweep(path)) == []
