"""Tests for the barrier time-composition analytics (Figs. 7/10)."""

import pytest

from repro.algorithms import MeanMicrobench
from repro.errors import ExperimentError
from repro.harness import run
from repro.harness.tracestats import (
    barrier_composition,
    composition_study,
    render_composition,
)
from repro.model.calibration import default_timings


@pytest.fixture
def micro():
    return MeanMicrobench(rounds=10, num_blocks_hint=16, threads_per_block=32)


def test_requires_kept_device(micro):
    result = run(micro, "gpu-simple", 8)
    with pytest.raises(ExperimentError, match="keep_device"):
        barrier_composition(result)


def test_lockfree_has_zero_atomic_time(micro):
    result = run(micro, "gpu-lockfree", 16, keep_device=True)
    comp = barrier_composition(result)
    assert comp["atomic"] == 0.0
    assert comp["spin"] > 0
    assert comp["syncthreads"] > 0
    assert comp["sync-overhead"] == default_timings().lockfree_overhead_ns


def test_simple_composition_matches_fig7_structure(micro):
    """Fig. 7: simple sync = serialized atomic adds + mutex checking.

    Per-block average atomic time (queue + service) is ~(N+1)/2 · t_a,
    and the primitives must account for the whole sync span.
    """
    n = 16
    result = run(micro, "gpu-simple", n, keep_device=True)
    comp = barrier_composition(result)
    t = default_timings()
    assert comp["atomic"] == pytest.approx((n + 1) / 2 * t.atomic_ns, rel=0.05)
    assert comp["syncthreads"] == t.syncthreads_ns
    # The whole barrier is accounted for by its primitives (per block,
    # waiting on the slowest chain shows up inside spin time).
    accounted = sum(
        comp[p] for p in ("atomic", "spin", "syncthreads", "sync-overhead")
    )
    assert accounted == pytest.approx(comp["total-sync"], rel=0.01)


def test_composition_study_and_rendering(micro):
    study = composition_study(
        strategies=("gpu-simple", "gpu-lockfree"), num_blocks=8, rounds=5
    )
    assert set(study) == {"gpu-simple", "gpu-lockfree"}
    assert study["gpu-simple"]["atomic"] > study["gpu-lockfree"]["atomic"]
    text = render_composition(study)
    assert "Figs. 7/10" in text
    assert "gpu-lockfree" in text
