"""Tests for the claim-checking engine (small problem sizes)."""


from repro.harness.claims import CheckResult, check_headline, check_table1
from repro.harness.phases import Breakdown


def fake_breakdown(sync_pct: float) -> Breakdown:
    total = 1_000_000
    sync = int(total * sync_pct / 100)
    return Breakdown("cpu-implicit", total, total - sync, sync)


class TestCheckTable1:
    def test_passing_values(self):
        results = {
            "fft": fake_breakdown(18.0),
            "swat": fake_breakdown(50.0),
            "bitonic": fake_breakdown(59.0),
        }
        checks = check_table1(results=results)
        assert all(c.passed for c in checks)
        assert {c.claim_id for c in checks} == {
            "table1/fft",
            "table1/swat",
            "table1/bitonic",
            "table1/ordering",
        }

    def test_out_of_band_fails(self):
        results = {
            "fft": fake_breakdown(40.0),  # way off 19.6
            "swat": fake_breakdown(50.0),
            "bitonic": fake_breakdown(59.0),
        }
        checks = {c.claim_id: c for c in check_table1(results=results)}
        assert not checks["table1/fft"].passed
        assert checks["table1/swat"].passed

    def test_broken_ordering_fails(self):
        results = {
            "fft": fake_breakdown(21.0),
            "swat": fake_breakdown(52.0),
            "bitonic": fake_breakdown(51.0),  # below swat
        }
        checks = {c.claim_id: c for c in check_table1(results=results)}
        assert not checks["table1/ordering"].passed


class TestCheckHeadline:
    def test_passing_values(self):
        results = {
            "micro_lockfree_vs_explicit": 7.77,
            "micro_lockfree_vs_implicit": 3.73,
            "fft_improvement_pct": 12.8,
            "swat_improvement_pct": 36.6,
            "bitonic_improvement_pct": 43.0,
        }
        checks = check_headline(results=results)
        assert all(c.passed for c in checks)

    def test_ratio_outside_tolerance_fails(self):
        results = {
            "micro_lockfree_vs_explicit": 5.0,  # paper: 7.8, ±10%
            "micro_lockfree_vs_implicit": 3.7,
            "fft_improvement_pct": 10.0,
            "swat_improvement_pct": 30.0,
            "bitonic_improvement_pct": 40.0,
        }
        checks = {c.claim_id: c for c in check_headline(results=results)}
        assert not checks["headline/micro_lockfree_vs_explicit"].passed
        assert checks["headline/micro_lockfree_vs_implicit"].passed


class TestCheckResult:
    def test_str_rendering(self):
        c = CheckResult("x/y", 7.8, 7.77, "±10%", True, "abstract")
        assert "PASS" in str(c)
        assert "7.8" in str(c)
        c2 = CheckResult("x/y", 7.8, 2.0, "±10%", False, "abstract")
        assert "FAIL" in str(c2)


class TestLiveChecksAtSmallScale:
    def test_headline_checks_pass_on_real_measurements(self):
        """Run the actual micro-benchmark part (cheap) live."""
        from repro.harness import experiments

        measured = {}
        # Only the micro ratios are cheap; reuse the experiment at small
        # rounds and patch in plausible improvement numbers for the rest.
        sweep = experiments.fig11(
            rounds=40,
            blocks=[30],
            strategies=["cpu-explicit", "cpu-implicit", "gpu-lockfree"],
        )
        lockfree = sweep.sync_series("gpu-lockfree")[0]
        measured["micro_lockfree_vs_explicit"] = (
            sweep.sync_series("cpu-explicit")[0] / lockfree
        )
        measured["micro_lockfree_vs_implicit"] = (
            sweep.sync_series("cpu-implicit")[0] / lockfree
        )
        measured["fft_improvement_pct"] = 12.8
        measured["swat_improvement_pct"] = 36.6
        measured["bitonic_improvement_pct"] = 43.0
        checks = {c.claim_id: c for c in check_headline(results=measured)}
        assert checks["headline/micro_lockfree_vs_explicit"].passed
        assert checks["headline/micro_lockfree_vs_implicit"].passed
