"""Tests for the top-level public API surface."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_readme_quickstart_snippet_works():
    """The code shown in README.md must actually run."""
    from repro import FFT, run

    result = run(FFT(n=2**8), "gpu-lockfree", num_blocks=4)
    assert result.total_ms > 0
    assert result.verified
    assert result.kernel_launches == 1


def test_strategy_names_cover_paper_and_extensions():
    names = repro.strategy_names()
    paper = {
        "cpu-explicit",
        "cpu-implicit",
        "gpu-simple",
        "gpu-tree-2",
        "gpu-tree-3",
        "gpu-lockfree",
    }
    extensions = {
        "gpu-sense-reversal",
        "gpu-dissemination",
        "gpu-simple-reset",
        "gpu-lockfree-serial",
        "gpu-lockfree-detailed",
        "null",
    }
    assert paper <= set(names)
    assert extensions <= set(names)


def test_subpackages_importable():
    import repro.algorithms
    import repro.gpu
    import repro.harness
    import repro.model
    import repro.simcore
    import repro.sync

    assert repro.simcore.Engine
    assert repro.gpu.Device
    assert repro.sync.SyncStrategy
    assert repro.model.default_timings
    assert repro.algorithms.RoundAlgorithm
    assert repro.harness.run


def test_docstrings_on_public_items():
    """Every public top-level item documents itself."""
    import inspect

    for name in repro.__all__:
        obj = getattr(repro, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"{name} lacks a docstring"
