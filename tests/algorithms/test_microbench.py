"""Tests for the mean-of-two-floats micro-benchmark."""

import pytest

from repro.algorithms import MeanMicrobench, VerificationError
from repro.errors import ConfigError
from repro.model.calibration import MICRO_ROUND_COMPUTE_NS

from tests.algorithms.conftest import run_rounds_serially


def test_computes_means():
    micro = MeanMicrobench(rounds=3, num_blocks_hint=4, threads_per_block=8)
    run_rounds_serially(micro, 4)
    micro.verify()


def test_weak_scaling_cost_is_flat():
    micro = MeanMicrobench(rounds=2)
    costs = {
        micro.round_cost(0, b, n) for n in (1, 8, 30) for b in range(n)
    }
    assert costs == {MICRO_ROUND_COMPUTE_NS}


def test_stamps_detect_missing_round():
    micro = MeanMicrobench(rounds=4, num_blocks_hint=2, threads_per_block=4)
    micro.reset()
    for r in range(4):
        for b in range(2):
            if (r, b) == (2, 1):
                continue
            work = micro.round_work(r, b, 2)
            if work is not None:
                work()
    with pytest.raises(VerificationError, match="stamps"):
        micro.verify()


def test_fewer_blocks_than_hint_still_covers_all_elements():
    micro = MeanMicrobench(rounds=2, num_blocks_hint=8, threads_per_block=4)
    run_rounds_serially(micro, 3)  # 3 blocks cover 32 elements
    micro.verify()


def test_reset_clears_state():
    micro = MeanMicrobench(rounds=2, num_blocks_hint=2, threads_per_block=4)
    run_rounds_serially(micro, 2)
    micro.reset()
    assert (micro.out == 0).all()
    assert (micro._stamps == 0).all()


def test_rejects_zero_rounds():
    with pytest.raises(ConfigError):
        MeanMicrobench(rounds=0)
