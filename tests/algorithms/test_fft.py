"""Tests for the radix-2 FFT workload."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import FFT, VerificationError
from repro.algorithms.fft import bit_reverse_permutation
from repro.errors import ConfigError

from tests.algorithms.conftest import run_rounds_serially


class TestBitReversal:
    def test_known_permutation(self):
        assert list(bit_reverse_permutation(8)) == [0, 4, 2, 6, 1, 5, 3, 7]

    def test_is_an_involution(self):
        rev = bit_reverse_permutation(64)
        assert np.array_equal(rev[rev], np.arange(64))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigError):
            bit_reverse_permutation(12)

    @given(bits=st.integers(1, 12))
    def test_is_a_permutation(self, bits):
        rev = bit_reverse_permutation(1 << bits)
        assert sorted(rev) == list(range(1 << bits))


class TestFFT:
    @pytest.mark.parametrize("n", [2, 4, 64, 1024])
    @pytest.mark.parametrize("num_blocks", [1, 3, 30])
    def test_matches_numpy(self, n, num_blocks):
        fft = FFT(n=n)
        run_rounds_serially(fft, num_blocks)
        fft.verify()

    def test_rounds_is_log2_n(self):
        assert FFT(n=2**10).num_rounds() == 10

    def test_reset_restores_bit_reversed_input(self):
        fft = FFT(n=16)
        run_rounds_serially(fft, 2)
        fft.reset()
        assert np.array_equal(
            fft.buf, fft.input[bit_reverse_permutation(16)]
        )

    def test_verify_detects_corruption(self):
        fft = FFT(n=64)
        run_rounds_serially(fft, 2)
        fft.buf[5] += 1.0
        with pytest.raises(VerificationError, match="fft"):
            fft.verify()

    def test_skipped_round_breaks_result(self):
        """Stage dependencies are real: dropping one block's work in one
        stage corrupts the transform."""
        fft = FFT(n=256)
        fft.reset()
        for r in range(fft.num_rounds()):
            for b in range(4):
                if (r, b) == (3, 2):
                    continue  # a block misses a stage
                work = fft.round_work(r, b, 4)
                if work is not None:
                    work()
        with pytest.raises(VerificationError):
            fft.verify()

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigError):
            FFT(n=12)
        with pytest.raises(ConfigError):
            FFT(n=1)

    def test_cost_scales_with_slice(self):
        fft = FFT(n=1024)
        full = fft.round_cost(0, 0, 1)
        split = fft.round_cost(0, 0, 2)
        assert full > split

    @settings(max_examples=20, deadline=None)
    @given(
        bits=st.integers(2, 9),
        num_blocks=st.integers(1, 30),
        seed=st.integers(0, 2**16),
    )
    def test_property_any_size_any_grid(self, bits, num_blocks, seed):
        fft = FFT(n=1 << bits, seed=seed)
        run_rounds_serially(fft, num_blocks)
        fft.verify()
