"""Tests for the bitonic-sort workload."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import BitonicSort, VerificationError
from repro.algorithms.bitonic import bitonic_steps
from repro.errors import ConfigError

from tests.algorithms.conftest import run_rounds_serially


class TestSteps:
    def test_step_count_is_k_k_plus_1_over_2(self):
        for k in range(1, 12):
            assert len(bitonic_steps(1 << k)) == k * (k + 1) // 2

    def test_step_sequence_for_8(self):
        assert bitonic_steps(8) == [
            (2, 1),
            (4, 2),
            (4, 1),
            (8, 4),
            (8, 2),
            (8, 1),
        ]

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigError):
            bitonic_steps(12)
        with pytest.raises(ConfigError):
            bitonic_steps(1)


class TestBitonicSort:
    @pytest.mark.parametrize("n", [2, 8, 256, 4096])
    @pytest.mark.parametrize("num_blocks", [1, 3, 30])
    def test_sorts(self, n, num_blocks):
        sort = BitonicSort(n=n)
        run_rounds_serially(sort, num_blocks)
        sort.verify()

    def test_sorts_beyond_single_block_limit(self):
        """The paper's motivation (§3): the CUDA SDK bitonic sort caps at
        512 keys (one block); a grid barrier removes the cap."""
        sort = BitonicSort(n=2048)  # 4x the single-block limit
        run_rounds_serially(sort, 30)
        sort.verify()

    def test_verify_detects_unsorted(self):
        sort = BitonicSort(n=64)
        run_rounds_serially(sort, 2)
        sort.keys[0], sort.keys[-1] = sort.keys[-1], sort.keys[0]
        with pytest.raises(VerificationError, match="bitonic"):
            sort.verify()

    def test_result_is_permutation_of_input(self):
        sort = BitonicSort(n=128)
        run_rounds_serially(sort, 4)
        assert np.array_equal(np.sort(sort.input), sort.keys)

    def test_skipped_step_breaks_order(self):
        sort = BitonicSort(n=256)
        sort.reset()
        for r in range(sort.num_rounds()):
            if r == 5:
                continue  # a whole network step is dropped
            for b in range(4):
                work = sort.round_work(r, b, 4)
                if work is not None:
                    work()
        with pytest.raises(VerificationError):
            sort.verify()

    def test_reset_restores_input(self):
        sort = BitonicSort(n=32)
        run_rounds_serially(sort, 2)
        sort.reset()
        assert np.array_equal(sort.keys, sort.input)

    @settings(max_examples=20, deadline=None)
    @given(
        bits=st.integers(1, 10),
        num_blocks=st.integers(1, 30),
        seed=st.integers(0, 2**16),
    )
    def test_property_sorts_any_size_any_grid(self, bits, num_blocks, seed):
        sort = BitonicSort(n=1 << bits, seed=seed)
        run_rounds_serially(sort, num_blocks)
        sort.verify()

    def test_sorts_adversarial_inputs(self):
        """Already-sorted, reversed and constant inputs (network property:
        fixed comparator sequence sorts *anything*)."""
        for values in (
            np.arange(64.0),
            np.arange(64.0)[::-1].copy(),
            np.zeros(64),
            np.tile([3.0, 1.0], 32),
        ):
            sort = BitonicSort(n=64)
            sort.input = values
            run_rounds_serially(sort, 3)
            sort.verify()
