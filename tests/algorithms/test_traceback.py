"""Tests for the Smith-Waterman trace-back."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import SmithWaterman
from repro.algorithms.traceback import score_alignment, traceback
from repro.errors import ConfigError

from tests.algorithms.conftest import run_rounds_serially


def filled(query: bytes, subject: bytes, **kw) -> SmithWaterman:
    algo = SmithWaterman(len(query), len(subject), **kw)
    algo.query = np.frombuffer(query, dtype=np.uint8)
    algo.subject = np.frombuffer(subject, dtype=np.uint8)
    algo._expected = None
    run_rounds_serially(algo, 4)
    return algo


class TestScoreAlignment:
    def test_matches_and_mismatches(self):
        assert score_alignment("ACGT", "ACGA", 2, -1, 3, 1) == 5

    def test_affine_gap_costs(self):
        # one gap of length 3: open + 2 extensions = 3 + 1 + 1.
        assert score_alignment("AAA---G", "AAACCCG", 2, -1, 3, 1) == 8 - 5

    def test_rejects_bad_input(self):
        with pytest.raises(ConfigError):
            score_alignment("AB", "A", 2, -1, 3, 1)
        with pytest.raises(ConfigError):
            score_alignment("-", "-", 2, -1, 3, 1)


class TestTraceback:
    def test_perfect_match(self):
        algo = filled(b"ACGT", b"ACGT")
        aln = traceback(algo)
        assert aln.query == aln.subject == "ACGT"
        assert aln.score == 8
        assert aln.identity == 1.0
        assert aln.query_span == (0, 4)

    def test_local_alignment_is_substring(self):
        algo = filled(b"ACG", b"TTACGTT")
        aln = traceback(algo)
        assert aln.query == "ACG"
        assert aln.subject == "ACG"
        assert aln.subject_span == (2, 5)

    def test_gap_in_alignment(self):
        # Query has an insertion relative to the subject.
        algo = filled(b"AAACCCTTT", b"AAATTT", gap_open=2, gap_extend=1)
        aln = traceback(algo)
        assert "-" in aln.subject
        assert aln.score == int(algo.H.max())

    def test_disjoint_sequences_empty_alignment(self):
        algo = filled(b"AAAA", b"TTTT")
        aln = traceback(algo)
        assert aln.length == 0
        assert aln.score == 0

    def test_pretty_rendering(self):
        algo = filled(b"ACGT", b"ACGT")
        lines = traceback(algo).pretty().splitlines()
        assert lines[0] == "ACGT"
        assert lines[1] == "||||"
        assert lines[2] == "ACGT"

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(2, 24),
        m=st.integers(2, 24),
        seed=st.integers(0, 2**16),
    )
    def test_traceback_score_equals_matrix_score(self, n, m, seed):
        """The emitted alignment, scored independently, must equal the
        matrix optimum — the defining property of a correct trace-back."""
        algo = SmithWaterman(n, m, seed=seed)
        run_rounds_serially(algo, 3)
        aln = traceback(algo)
        rescored = score_alignment(
            aln.query, aln.subject, algo.match, algo.mismatch,
            algo.gap_open, algo.gap_extend,
        )
        assert rescored == aln.score == int(algo.H.max())

    def test_spans_index_original_sequences(self):
        algo = SmithWaterman(20, 20, seed=7)
        run_rounds_serially(algo, 3)
        aln = traceback(algo)
        q = algo.query.tobytes().decode()
        s = algo.subject.tobytes().decode()
        assert aln.query.replace("-", "") == q[aln.query_span[0] : aln.query_span[1]]
        assert (
            aln.subject.replace("-", "")
            == s[aln.subject_span[0] : aln.subject_span[1]]
        )


class TestInverseFFT:
    def test_inverse_matches_numpy(self):
        from repro.algorithms import FFT

        fft = FFT(n=256, inverse=True)
        run_rounds_serially(fft, 4)
        fft.verify()

    def test_round_trip_recovers_input(self):
        from repro.algorithms import FFT

        fwd = FFT(n=128, seed=3)
        run_rounds_serially(fwd, 4)
        inv = FFT(n=128, inverse=True)
        inv.input = fwd.buf.copy()
        inv.reset()
        run_rounds_serially(inv, 4)
        assert np.allclose(inv.buf / 128, fwd.input)
