"""Shared helper: execute an algorithm's rounds serially (no simulator)."""

from repro.algorithms.base import RoundAlgorithm


def run_rounds_serially(algorithm: RoundAlgorithm, num_blocks: int) -> None:
    """Apply every round's work in order — a correct-barrier execution."""
    algorithm.reset()
    for r in range(algorithm.num_rounds()):
        for b in range(num_blocks):
            work = algorithm.round_work(r, b, num_blocks)
            if work is not None:
                work()
