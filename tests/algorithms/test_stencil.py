"""Tests for the Jacobi stencil workload."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import JacobiPoisson, VerificationError
from repro.errors import ConfigError

from tests.algorithms.conftest import run_rounds_serially


@pytest.mark.parametrize("n", [2, 31, 256])
@pytest.mark.parametrize("num_blocks", [1, 4, 30])
def test_matches_serial_reference(n, num_blocks):
    algo = JacobiPoisson(n=n, sweeps=30)
    run_rounds_serially(algo, num_blocks)
    algo.verify()


def test_more_sweeps_converge_further():
    residuals = []
    for sweeps in (10, 100, 1000):
        algo = JacobiPoisson(n=64, sweeps=sweeps)
        run_rounds_serially(algo, 4)
        algo.verify()
        residuals.append(algo.residual())
    assert residuals[0] > residuals[1] > residuals[2]


def test_verify_detects_halo_corruption():
    algo = JacobiPoisson(n=64, sweeps=20)
    run_rounds_serially(algo, 4)
    algo._bufs[algo.sweeps % 2][10] += 1e-6
    with pytest.raises(VerificationError, match="serial reference"):
        algo.verify()


def test_skipped_block_sweep_detected():
    algo = JacobiPoisson(n=64, sweeps=20)
    algo.reset()
    for r in range(algo.num_rounds()):
        for b in range(4):
            if (r, b) == (5, 2):
                continue
            work = algo.round_work(r, b, 4)
            if work is not None:
                work()
    with pytest.raises(VerificationError):
        algo.verify()


def test_exact_solution_properties():
    algo = JacobiPoisson(n=32, sweeps=5)
    exact = algo.exact()
    # -u'' = f with f > 0 and zero boundaries → u > 0 inside.
    assert (exact > 0).all()


def test_validation():
    with pytest.raises(ConfigError):
        JacobiPoisson(n=1)
    with pytest.raises(ConfigError):
        JacobiPoisson(n=8, sweeps=0)


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(2, 128),
    sweeps=st.integers(1, 60),
    num_blocks=st.integers(1, 30),
)
def test_property_any_configuration(n, sweeps, num_blocks):
    algo = JacobiPoisson(n=n, sweeps=sweeps)
    run_rounds_serially(algo, num_blocks)
    algo.verify()


@pytest.mark.parametrize(
    "strategy", ["cpu-implicit", "gpu-lockfree", "gpu-dissemination"]
)
def test_end_to_end_through_simulator(strategy):
    from repro.harness import run

    algo = JacobiPoisson(n=256, sweeps=40)
    result = run(algo, strategy, num_blocks=8, threads_per_block=64)
    assert result.verified is True
    assert result.violations == 0
