"""Tests for work partitioning and cost helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms.costs import STAGE_OVERHEAD_NS, block_cost, block_items


def test_even_partition():
    assert list(block_items(8, 0, 4)) == [0, 1]
    assert list(block_items(8, 3, 4)) == [6, 7]


def test_uneven_partition_last_block_short():
    # 10 items over 4 blocks: ceil(10/4)=3 → 3,3,3,1.
    sizes = [len(block_items(10, b, 4)) for b in range(4)]
    assert sizes == [3, 3, 3, 1]


def test_blocks_past_the_end_get_empty_ranges():
    sizes = [len(block_items(4, b, 8)) for b in range(8)]
    assert sizes == [1, 1, 1, 1, 0, 0, 0, 0]


def test_zero_items():
    assert len(block_items(0, 0, 4)) == 0


def test_invalid_blocks():
    with pytest.raises(ValueError):
        block_items(4, 0, 0)


@given(
    total=st.integers(0, 10_000),
    num_blocks=st.integers(1, 64),
)
def test_partition_covers_everything_disjointly(total, num_blocks):
    seen = []
    for b in range(num_blocks):
        seen.extend(block_items(total, b, num_blocks))
    assert seen == list(range(total))


@given(
    total=st.integers(1, 10_000),
    num_blocks=st.integers(1, 64),
)
def test_partition_is_balanced(total, num_blocks):
    sizes = [len(block_items(total, b, num_blocks)) for b in range(num_blocks)]
    nonzero = [s for s in sizes if s]
    assert max(nonzero) - min(nonzero) <= max(nonzero)  # sanity
    # No block exceeds ceil(total/num_blocks).
    import math

    assert max(sizes) == math.ceil(total / num_blocks)


def test_block_cost_includes_overhead():
    assert block_cost(0, 45) == STAGE_OVERHEAD_NS
    assert block_cost(10, 45) == STAGE_OVERHEAD_NS + 450
