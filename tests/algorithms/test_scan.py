"""Tests for the prefix-sum extension workload."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import PrefixSum, VerificationError
from repro.errors import ConfigError

from tests.algorithms.conftest import run_rounds_serially


@pytest.mark.parametrize("n", [2, 16, 1024])
@pytest.mark.parametrize("num_blocks", [1, 5, 30])
def test_matches_cumsum(n, num_blocks):
    scan = PrefixSum(n=n)
    run_rounds_serially(scan, num_blocks)
    scan.verify()


def test_rounds_is_log2_n():
    assert PrefixSum(n=1024).num_rounds() == 10


def test_verify_detects_corruption():
    scan = PrefixSum(n=64)
    run_rounds_serially(scan, 2)
    scan.result[10] += 1.0
    with pytest.raises(VerificationError, match="scan"):
        scan.verify()


def test_skipped_block_breaks_scan():
    scan = PrefixSum(n=256)
    scan.reset()
    for r in range(scan.num_rounds()):
        for b in range(4):
            if (r, b) == (2, 1):
                continue
            work = scan.round_work(r, b, 4)
            if work is not None:
                work()
    with pytest.raises(VerificationError):
        scan.verify()


def test_reset_restores_input():
    scan = PrefixSum(n=32)
    run_rounds_serially(scan, 2)
    scan.reset()
    assert np.array_equal(scan._bufs[0], scan.input)


def test_rejects_bad_sizes():
    with pytest.raises(ConfigError):
        PrefixSum(n=12)
    with pytest.raises(ConfigError):
        PrefixSum(n=1)


@settings(max_examples=15, deadline=None)
@given(
    bits=st.integers(1, 10),
    num_blocks=st.integers(1, 30),
    seed=st.integers(0, 2**16),
)
def test_property_any_size_any_grid(bits, num_blocks, seed):
    scan = PrefixSum(n=1 << bits, seed=seed)
    run_rounds_serially(scan, num_blocks)
    scan.verify()


@pytest.mark.parametrize(
    "strategy", ["cpu-implicit", "gpu-lockfree", "gpu-dissemination"]
)
def test_end_to_end_through_simulator(strategy):
    from repro.harness import run

    result = run(PrefixSum(n=512), strategy, num_blocks=6, threads_per_block=64)
    assert result.verified is True
    assert result.violations == 0
