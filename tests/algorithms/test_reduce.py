"""Tests for the tree-reduction extension workload."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import Reduction, VerificationError
from repro.errors import ConfigError

from tests.algorithms.conftest import run_rounds_serially


@pytest.mark.parametrize("n", [1, 7, 1024])
@pytest.mark.parametrize("num_blocks", [1, 4, 30])
def test_sums_correctly(n, num_blocks):
    algo = Reduction(n=n, num_blocks_hint=30)
    run_rounds_serially(algo, num_blocks)
    algo.verify()


def test_more_blocks_than_hint():
    algo = Reduction(n=256, num_blocks_hint=8)
    run_rounds_serially(algo, 30)
    algo.verify()


def test_round_count_is_log_of_hint():
    assert Reduction(n=64, num_blocks_hint=30).num_rounds() == 6  # 1 + ceil(log2 30)
    assert Reduction(n=64, num_blocks_hint=2).num_rounds() == 2


def test_verify_detects_missing_fold():
    algo = Reduction(n=128, num_blocks_hint=8)
    algo.reset()
    for r in range(algo.num_rounds()):
        if r == 2:
            continue  # drop one halving round entirely
        for b in range(4):
            work = algo.round_work(r, b, 4)
            if work is not None:
                work()
    with pytest.raises(VerificationError):
        algo.verify()


def test_reset_allows_reruns():
    algo = Reduction(n=64, num_blocks_hint=4)
    run_rounds_serially(algo, 4)
    first = algo.result
    run_rounds_serially(algo, 2)  # runner resets internally via helper
    assert algo.result == pytest.approx(first)


def test_validation():
    with pytest.raises(ConfigError):
        Reduction(n=0)
    with pytest.raises(ConfigError):
        Reduction(n=4, num_blocks_hint=0)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(1, 2000),
    hint=st.integers(1, 32),
    num_blocks=st.integers(1, 30),
    seed=st.integers(0, 2**16),
)
def test_property_any_shape(n, hint, num_blocks, seed):
    algo = Reduction(n=n, num_blocks_hint=hint, seed=seed)
    run_rounds_serially(algo, num_blocks)
    algo.verify()


@pytest.mark.parametrize("strategy", ["cpu-implicit", "gpu-lockfree", "gpu-tree-2"])
def test_end_to_end_through_simulator(strategy):
    from repro.harness import run

    algo = Reduction(n=4096, num_blocks_hint=16)
    result = run(algo, strategy, num_blocks=16, threads_per_block=64)
    assert result.verified is True
    assert result.violations == 0


def test_sync_dominates_this_workload():
    """The extreme-ρ case: almost everything is barrier time under CPU
    implicit sync — the paper's Eq. 2 says this workload gains most."""
    from repro.harness import run
    from repro.harness.phases import breakdown, compute_only

    algo = Reduction(n=4096, num_blocks_hint=30)
    null = compute_only(algo, 30)
    b = breakdown(run(algo, "cpu-implicit", 30), null)
    assert b.sync_pct > 60
