"""Tests for the Smith-Waterman workload."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import SmithWaterman, VerificationError
from repro.algorithms.swat import random_sequence, swat_reference
from repro.errors import ConfigError

from tests.algorithms.conftest import run_rounds_serially


class TestReference:
    def test_identical_sequences_score_match_times_length(self):
        seq = random_sequence(16, seed=1)
        _H, best = swat_reference(seq, seq, match=2)
        assert best == 2 * 16

    def test_disjoint_alphabets_score_zero(self):
        a = np.frombuffer(b"AAAA", dtype=np.uint8)
        b = np.frombuffer(b"TTTT", dtype=np.uint8)
        _H, best = swat_reference(a, b)
        assert best == 0

    def test_known_small_alignment(self):
        # query ACG vs subject ACG embedded in TACGT: perfect 3-match.
        q = np.frombuffer(b"ACG", dtype=np.uint8)
        s = np.frombuffer(b"TACGT", dtype=np.uint8)
        _H, best = swat_reference(q, s, match=2, mismatch=-1)
        assert best == 6

    def test_gap_penalties_applied(self):
        # ACGT vs ACT: best local alignment "AC" = 4, or with a gap:
        # A C G T vs A C - T = 3*2 - (3+1)... affine open 3 ext 1 →
        # score max(4, 6 - 4) ... still 4? Verify monotonic behaviour:
        q = np.frombuffer(b"ACGT", dtype=np.uint8)
        s = np.frombuffer(b"ACT", dtype=np.uint8)
        _H, strict = swat_reference(q, s, gap_open=10, gap_extend=10)
        _H, lenient = swat_reference(q, s, gap_open=1, gap_extend=1)
        assert lenient >= strict

    def test_scores_nonnegative(self):
        q, s = random_sequence(24, 3), random_sequence(20, 4)
        H, best = swat_reference(q, s)
        assert (H >= 0).all()
        assert best >= 0


class TestSmithWaterman:
    @pytest.mark.parametrize("shape", [(8, 8), (16, 5), (5, 16), (1, 9)])
    @pytest.mark.parametrize("num_blocks", [1, 4, 30])
    def test_matches_reference(self, shape, num_blocks):
        algo = SmithWaterman(*shape)
        run_rounds_serially(algo, num_blocks)
        algo.verify()

    def test_rounds_are_antidiagonals(self):
        assert SmithWaterman(10, 20).num_rounds() == 29  # n + m - 1

    def test_diag_rows_cover_matrix_exactly_once(self):
        algo = SmithWaterman(7, 11)
        seen = np.zeros((8, 12), dtype=int)
        for r in range(algo.num_rounds()):
            ilo, ihi = algo._diag_rows(r)
            d = r + 2
            for i in range(ilo, ihi):
                seen[i, d - i] += 1
        assert (seen[1:, 1:] == 1).all()
        assert (seen[0, :] == 0).all() and (seen[:, 0] == 0).all()

    def test_verify_detects_corruption(self):
        algo = SmithWaterman(12, 12)
        run_rounds_serially(algo, 2)
        algo.H[3, 3] += 1
        with pytest.raises(VerificationError, match="swat"):
            algo.verify()

    def test_skipped_diagonal_breaks_result(self):
        algo = SmithWaterman(16, 16)
        algo.reset()
        for r in range(algo.num_rounds()):
            if r == 7:
                continue
            for b in range(3):
                work = algo.round_work(r, b, 3)
                if work is not None:
                    work()
        with pytest.raises(VerificationError):
            algo.verify()

    def test_best_score_property(self):
        algo = SmithWaterman(20, 20)
        run_rounds_serially(algo, 4)
        assert algo.best_score == int(algo.H.max())
        assert algo.best_score >= 0

    def test_round_cost_tracks_diagonal_length(self):
        algo = SmithWaterman(32, 32)
        # The middle diagonal is the longest.
        mid = algo.round_cost(31, 0, 1)
        first = algo.round_cost(0, 0, 1)
        assert mid > first

    def test_reset_clears_matrices(self):
        algo = SmithWaterman(8, 8)
        run_rounds_serially(algo, 2)
        algo.reset()
        assert (algo.H == 0).all()

    def test_rejects_empty_sequences(self):
        with pytest.raises(ConfigError):
            random_sequence(0, seed=0)

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(1, 24),
        m=st.integers(1, 24),
        num_blocks=st.integers(1, 30),
        seed=st.integers(0, 2**16),
    )
    def test_property_any_shape_any_grid(self, n, m, num_blocks, seed):
        algo = SmithWaterman(n, m, seed=seed)
        run_rounds_serially(algo, num_blocks)
        algo.verify()
