"""Tests for the shared versioned-envelope protocol."""

import json

import pytest

from repro.errors import ExperimentError
from repro.gpu.presets import get_preset
from repro.harness import experiments
from repro.harness.store import load_result, load_sweep, save_sweep
from repro.serialization import (
    COMPATIBLE_SCHEMA_VERSIONS,
    RESULT_SCHEMA_VERSION,
    canonical_json,
    device_config_from_dict,
    device_config_to_dict,
    dump_result,
    parse_result,
    plain,
    require,
    run_result_from_dict,
    run_result_to_dict,
)


def test_plain_coerces_tuples_and_numpy():
    np = pytest.importorskip("numpy")
    value = {"a": (1, 2), "b": np.int64(3), "c": [np.float64(0.5)]}
    assert plain(value) == {"a": [1, 2], "b": 3, "c": [0.5]}


def test_plain_rejects_unserializable():
    with pytest.raises(ExperimentError, match="cannot serialize"):
        plain({"x": object()})


def test_canonical_json_is_order_insensitive():
    assert canonical_json({"b": 1, "a": (2,)}) == canonical_json(
        {"a": [2], "b": 1}
    )


def test_envelope_roundtrip():
    text = dump_result("sweep", {"blocks": [1, 2]})
    payload = parse_result(text, kind="sweep")
    assert payload["schema"] == RESULT_SCHEMA_VERSION
    assert payload["blocks"] == [1, 2]


def test_kind_mismatch_names_source():
    text = dump_result("chaos-report", {})
    with pytest.raises(
        ExperimentError, match="a.json does not contain a sweep"
    ):
        parse_result(text, kind="sweep", source="a.json")


def test_schema_mismatch_names_versions():
    text = json.dumps({"schema": 99, "kind": "sweep"})
    with pytest.raises(ExperimentError, match="has schema 99.*version"):
        parse_result(text, kind="sweep", source="a.json")


def test_invalid_json_is_typed():
    with pytest.raises(ExperimentError, match="not valid JSON"):
        parse_result("{nope", kind="sweep")


def test_missing_field_is_typed_not_keyerror():
    payload = parse_result(dump_result("sweep", {}), kind="sweep")
    with pytest.raises(
        ExperimentError, match="b.json: missing required field 'blocks'"
    ):
        require(payload, "blocks", "b.json")


def test_device_config_roundtrip():
    cfg = get_preset("gtx280")
    again = device_config_from_dict(device_config_to_dict(cfg))
    assert again == cfg


@pytest.fixture
def sweep():
    return experiments.fig11(rounds=5, blocks=[2, 4], strategies=["gpu-simple"])


def test_sweep_json_roundtrip(sweep):
    again = experiments.SweepResult.from_json(sweep.to_json())
    assert again == sweep
    assert again.to_json() == sweep.to_json()


def test_legacy_schema1_sweep_still_loads(tmp_path, sweep):
    legacy = {
        "schema": 1,
        "kind": "sweep",
        "algorithm": sweep.algorithm,
        "blocks": list(sweep.blocks),
        "totals": {k: list(v) for k, v in sweep.totals.items()},
        "nulls": list(sweep.nulls),
    }
    path = tmp_path / "legacy.json"
    path.write_text(json.dumps(legacy))
    assert load_sweep(path) == sweep


def test_load_result_dispatches_on_kind(tmp_path, sweep):
    path = save_sweep(sweep, tmp_path / "s.json")
    assert load_result(path) == sweep

    from repro.faults.chaos import ChaosReport, chaos_campaign

    chaos = chaos_campaign("gpu-simple", plans=2, num_blocks=4, rounds=2)
    cpath = tmp_path / "c.json"
    cpath.write_text(chaos.to_json())
    assert isinstance(load_result(cpath), ChaosReport)

    from repro.sanitize.report import SanitizeReport
    from repro.sanitize.sanitizer import sanitize_run

    rep = sanitize_run(strategy="gpu-simple", num_blocks=4, schedules=2)
    spath = tmp_path / "r.json"
    spath.write_text(rep.to_json())
    assert isinstance(load_result(spath), SanitizeReport)


def test_load_result_unknown_kind(tmp_path):
    path = tmp_path / "x.json"
    path.write_text(json.dumps({"schema": 2, "kind": "mystery"}))
    with pytest.raises(ExperimentError, match="unknown result kind"):
        load_result(path)


def test_schema2_envelope_still_accepted():
    text = json.dumps({"schema": 2, "kind": "sweep", "blocks": [1]})
    assert parse_result(text, kind="sweep")["blocks"] == [1]
    assert COMPATIBLE_SCHEMA_VERSIONS == (2, RESULT_SCHEMA_VERSION)


def test_sweep_provenance_fields_roundtrip(sweep):
    sweep.retries = 3
    sweep.quarantined = [1, 4]
    sweep.resumed_from = "abcd" * 4
    again = experiments.SweepResult.from_json(sweep.to_json())
    assert again.retries == 3
    assert again.quarantined == [1, 4]
    # resumed_from is deliberately in-memory only: a resumed sweep must
    # serialize byte-identically to an uninterrupted one.
    assert again.resumed_from is None
    assert again == sweep
    assert '"resumed_from"' not in sweep.to_json()


def test_sweep_json_without_provenance_fields_loads(sweep):
    payload = json.loads(sweep.to_json())
    del payload["retries"]
    del payload["quarantined"]
    again = experiments.SweepResult.from_json(json.dumps(payload))
    assert again.retries == 0
    assert again.quarantined == []


def test_run_result_dict_roundtrip():
    from repro.algorithms import MeanMicrobench
    from repro.harness.resilient import RetryPolicy
    from repro.faults import FaultPlan, FaultSpec

    import repro

    plan = FaultPlan([FaultSpec("driver-kill", block=0, round=1)])
    result = repro.run(
        MeanMicrobench(rounds=3, num_blocks_hint=4),
        "gpu-lockfree",
        num_blocks=4,
        retry=RetryPolicy(max_attempts=2),
        faults=plan,
    )
    assert result.attempts == 2 and result.recovery  # a real recovery path
    payload = run_result_to_dict(result)
    assert "device" not in payload and "resumed_from" not in payload
    json.dumps(payload)  # journal-serializable
    again = run_result_from_dict(payload)
    assert again == result
    assert again.recovery == result.recovery
    assert type(again.recovery[0]) is type(result.recovery[0])
