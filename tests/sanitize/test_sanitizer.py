"""The sanitizer itself: reports, determinism, and each detector."""

import pytest

from repro.algorithms import MeanMicrobench
from repro.algorithms.base import VerificationError
from repro.gpu.device import Device
from repro.gpu.host import Host
from repro.gpu.kernel import KernelSpec
from repro.sanitize import (
    BUG_CLASSES,
    Finding,
    SanitizerProbe,
    SkewedMicrobench,
    race_findings,
    sanitize_run,
)


def test_clean_strategy_clean_report():
    report = sanitize_run(strategy="gpu-lockfree", num_blocks=8, schedules=5)
    assert report.clean
    assert report.schedules_run == 5
    assert report.schedules_flagged == 0
    assert report.barrier_events > 0 and report.access_events > 0
    assert "CLEAN" in report.render()


def test_same_seed_renders_identical_report():
    kwargs = dict(strategy="broken-simple-undercount", num_blocks=6, schedules=4)
    a = sanitize_run(seed=99, **kwargs)
    b = sanitize_run(seed=99, **kwargs)
    assert a.render() == b.render()
    assert a.to_json() == b.to_json()
    assert not a.clean


def test_report_serialization_shape():
    report = sanitize_run(strategy="gpu-simple", num_blocks=4, schedules=2)
    d = report.to_dict()
    assert d["strategy"] == "gpu-simple"
    assert d["clean"] is True
    assert d["schedules_run"] == 2
    assert d["findings"] == []


def test_finding_rejects_unknown_kind():
    with pytest.raises(ValueError):
        Finding(kind="not-a-bug-class", message="x")
    assert "data-race" in BUG_CLASSES


def test_fail_fast_stops_at_first_flagged_schedule():
    report = sanitize_run(
        strategy="broken-lockfree-noscatter",
        num_blocks=6,
        schedules=10,
        fail_fast=True,
    )
    assert not report.clean
    assert report.schedules_run == 1


def test_verification_failure_becomes_finding():
    class LyingMicro(MeanMicrobench):
        name = "micro-lying"

        def verify(self):
            raise VerificationError("intentionally wrong reference")

    report = sanitize_run(
        LyingMicro(rounds=2, num_blocks_hint=4, threads_per_block=64),
        "gpu-simple",
        4,
        schedules=2,
    )
    assert [f.kind for f in report.findings] == ["verification-failed"]
    assert report.schedules_flagged == 2


def test_data_race_on_shared_cell_detected():
    device = Device()
    arr = device.memory.alloc("racy_cell", 4)

    def program(ctx):
        # Every block writes cell 0 with no barrier anywhere: a textbook
        # inter-block race.
        yield from ctx.gwrite(arr, 0, ctx.block_id)
        yield from ctx.gread(arr, 0)

    probe = SanitizerProbe()
    device.probes.append(probe)
    host = Host(device)
    spec = KernelSpec(
        name="racy", program=program, grid_blocks=4, block_threads=32
    )

    def host_program():
        yield from host.launch(spec)
        yield from host.synchronize()

    device.engine.spawn(host_program(), "host")
    device.run()

    findings = race_findings(probe)
    assert findings, "conflicting unsynchronized writes must be flagged"
    assert all(f.kind == "data-race" for f in findings)
    assert findings[0].details["cell"] == 0
    assert len(findings[0].details["blocks"]) >= 2


def test_disjoint_cells_not_flagged():
    device = Device()
    arr = device.memory.alloc("per_block", 4)

    def program(ctx):
        # Each block owns its own cell: no conflict, no finding.
        yield from ctx.gwrite(arr, ctx.block_id, ctx.block_id)
        yield from ctx.gread(arr, ctx.block_id)

    probe = SanitizerProbe()
    device.probes.append(probe)
    host = Host(device)
    spec = KernelSpec(
        name="disjoint", program=program, grid_blocks=4, block_threads=32
    )

    def host_program():
        yield from host.launch(spec)
        yield from host.synchronize()

    device.engine.spawn(host_program(), "host")
    device.run()

    assert race_findings(probe) == []


def test_barrier_protocol_traffic_is_exempt_from_race_checks():
    """A correct barrier's own stores/atomics must never count as races."""
    probe = SanitizerProbe()
    from repro.harness.runner import run

    run(
        SkewedMicrobench(rounds=3, num_blocks_hint=8, threads_per_block=64),
        "gpu-simple",
        8,
        threads_per_block=64,
        probe=probe,
    )
    assert probe.accesses, "barrier traffic should be observed"
    assert race_findings(probe) == []
