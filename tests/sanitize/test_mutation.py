"""Mutation check: the sanitizer must catch seeded bugs and clear real code.

This is the subsystem's own proof of usefulness (ISSUE acceptance):

* every ``broken-*`` mutant strategy is flagged with the finding kinds
  its docstring promises;
* every shipped device barrier stays clean across 100 fuzzed schedules
  under a fixed seed;
* the seed printed in a finding replays the failure directly.
"""

import pytest

from repro.harness.runner import run
from repro.sanitize import (
    DEFAULT_SEED,
    SanitizerProbe,
    ScheduleFuzzer,
    SkewedMicrobench,
    barrier_findings,
    sanitize_run,
)
from repro.errors import DeadlockError

SHIPPED_DEVICE_BARRIERS = [
    "gpu-simple",
    "gpu-simple-reset",
    "gpu-sense-reversal",
    "gpu-tree-2",
    "gpu-tree-3",
    "gpu-dissemination",
    "gpu-lockfree",
    "gpu-lockfree-serial",
]

#: mutant → finding kinds that MUST appear (others may ride along).
MUTANT_EXPECTATIONS = {
    "broken-lockfree-noscatter": {"barrier-deadlock"},
    "broken-simple-undercount": {"premature-release", "round-overlap"},
    "broken-simple-skipround": {"barrier-divergence", "barrier-deadlock"},
}


def _algo(num_blocks: int = 8) -> SkewedMicrobench:
    return SkewedMicrobench(
        rounds=3, num_blocks_hint=num_blocks, threads_per_block=64
    )


@pytest.mark.sanitize
@pytest.mark.parametrize("strategy", SHIPPED_DEVICE_BARRIERS)
def test_shipped_strategy_clean_across_100_schedules(strategy):
    report = sanitize_run(
        _algo(), strategy, 8, seed=DEFAULT_SEED, schedules=100
    )
    assert report.schedules_run == 100
    assert report.clean, report.render()


@pytest.mark.sanitize
@pytest.mark.parametrize("mutant", sorted(MUTANT_EXPECTATIONS))
def test_mutant_is_flagged(mutant):
    report = sanitize_run(_algo(), mutant, 8, seed=DEFAULT_SEED, schedules=5)
    assert not report.clean, f"{mutant} escaped the sanitizer"
    kinds = {f.kind for f in report.findings}
    missing = MUTANT_EXPECTATIONS[mutant] - kinds
    assert not missing, (
        f"{mutant}: expected kinds {missing} absent; report:\n"
        + report.render()
    )
    # Every flagged schedule was counted and every finding is replayable.
    assert report.schedules_flagged == report.schedules_run
    assert all(f.seed is not None for f in report.findings)


def test_mutation_report_is_seed_stable():
    a = sanitize_run(
        _algo(), "broken-simple-undercount", 8, seed=DEFAULT_SEED, schedules=5
    )
    b = sanitize_run(
        _algo(), "broken-simple-undercount", 8, seed=DEFAULT_SEED, schedules=5
    )
    assert a.render() == b.render()


def test_finding_seed_replays_the_failure():
    """The seed a finding prints reproduces the exact failing schedule."""
    report = sanitize_run(
        _algo(), "broken-simple-skipround", 8, seed=DEFAULT_SEED, schedules=3
    )
    finding = next(f for f in report.findings if f.kind == "barrier-divergence")

    probe = SanitizerProbe()
    with pytest.raises(DeadlockError):
        run(
            _algo(),
            "broken-simple-skipround",
            8,
            threads_per_block=64,
            monitor_races=True,
            jitter_pct=25.0,
            jitter_seed=finding.seed,
            fuzzer=ScheduleFuzzer(finding.seed),
            probe=probe,
        )
    replayed = barrier_findings(probe, 8, seed=finding.seed, deadlocked=True)
    assert finding.fingerprint in {f.fingerprint for f in replayed}
