"""The pytest plugin: options, fixtures, and scaling behavior."""

from repro.sanitize import derive_seeds
from repro.sanitize.pytest_plugin import DEEP_SCHEDULES, QUICK_SCHEDULES


def test_fuzz_schedules_fixture_scales_with_session(
    fuzz_schedules, fuzz_seed, fuzz_schedule_count, sanitize_enabled
):
    fuzzers = list(fuzz_schedules())
    assert len(fuzzers) == fuzz_schedule_count
    assert [f.seed for f in fuzzers] == derive_seeds(
        fuzz_seed, fuzz_schedule_count
    )
    expected_default = DEEP_SCHEDULES if sanitize_enabled else QUICK_SCHEDULES
    assert fuzz_schedule_count > 0 and expected_default > 0


def test_fuzz_schedules_fixture_accepts_overrides(fuzz_schedules):
    fuzzers = list(fuzz_schedules(seed=7, n=3))
    assert [f.seed for f in fuzzers] == derive_seeds(7, 3)


def test_sanitized_run_fixture_uses_session_budget(
    sanitized_run, fuzz_schedule_count
):
    report = sanitized_run(strategy="gpu-simple", num_blocks=4, schedules=2)
    assert report.clean
    assert report.schedules_run == 2
    report = sanitized_run(strategy="gpu-simple", num_blocks=4)
    assert report.schedules_run == fuzz_schedule_count


INNER_TEST = """
def test_options(fuzz_seed, fuzz_schedule_count, sanitize_enabled):
    assert fuzz_seed == {seed}
    assert fuzz_schedule_count == {count}
    assert sanitize_enabled is {enabled}
"""


def test_cli_options_reach_fixtures(pytester):
    pytester.makepyfile(
        INNER_TEST.format(seed=7, count=3, enabled=False)
    )
    result = pytester.runpytest_inprocess(
        "-p",
        "repro.sanitize.pytest_plugin",
        "--fuzz-seed=7",
        "--fuzz-schedules=3",
    )
    result.assert_outcomes(passed=1)


def test_sanitize_flag_deepens_schedule_budget(pytester):
    from repro.sanitize.sanitizer import DEFAULT_SEED

    pytester.makepyfile(
        INNER_TEST.format(seed=DEFAULT_SEED, count=DEEP_SCHEDULES, enabled=True)
    )
    result = pytester.runpytest_inprocess(
        "-p", "repro.sanitize.pytest_plugin", "--sanitize"
    )
    result.assert_outcomes(passed=1)


def test_report_header_mentions_sanitize_mode(pytester):
    pytester.makepyfile("def test_ok():\n    assert True\n")
    result = pytester.runpytest_inprocess(
        "-p", "repro.sanitize.pytest_plugin", "--sanitize"
    )
    result.stdout.fnmatch_lines(["*sanitize: deep*"])
