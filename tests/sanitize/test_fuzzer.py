"""Determinism and coverage of the schedule fuzzer."""

import pytest

from repro.algorithms import MeanMicrobench
from repro.harness.runner import run
from repro.sanitize import SanitizerProbe, ScheduleFuzzer, derive_seeds, fuzz_schedules


def test_derive_seeds_deterministic():
    assert derive_seeds(2010, 10) == derive_seeds(2010, 10)
    assert derive_seeds(2010, 10) != derive_seeds(2011, 10)


def test_derive_seeds_stable_under_count():
    """Seed i of a long campaign equals seed i of a short one."""
    assert derive_seeds(2010, 100)[:10] == derive_seeds(2010, 10)


def test_derive_seeds_rejects_negative_count():
    with pytest.raises(ValueError):
        derive_seeds(0, -1)


def test_fuzzer_decision_stream_is_pure_function_of_seed():
    a, b = ScheduleFuzzer(42), ScheduleFuzzer(42)
    assert [a.queue_priority() for _ in range(20)] == [
        b.queue_priority() for _ in range(20)
    ]
    cands = list(range(8))
    assert [a.sm_tiebreak(cands) for _ in range(20)] == [
        b.sm_tiebreak(cands) for _ in range(20)
    ]
    assert a.decisions == b.decisions == 40


def test_sm_tiebreak_stays_in_candidates():
    fuzzer = ScheduleFuzzer(7)
    cands = [3, 11, 17]
    assert all(fuzzer.sm_tiebreak(cands) in cands for _ in range(50))


def test_fuzz_schedules_yields_fresh_derived_fuzzers():
    fuzzers = list(fuzz_schedules(2010, 5))
    assert [f.seed for f in fuzzers] == derive_seeds(2010, 5)
    assert all(f.decisions == 0 for f in fuzzers)


def _fuzzed_events(seed: int):
    probe = SanitizerProbe()
    result = run(
        MeanMicrobench(rounds=3, num_blocks_hint=8, threads_per_block=64),
        "gpu-lockfree",
        8,
        threads_per_block=64,
        fuzzer=ScheduleFuzzer(seed),
        probe=probe,
    )
    assert result.verified is True
    return result.total_ns, probe.barrier_events


def test_same_seed_replays_identical_schedule():
    assert _fuzzed_events(123) == _fuzzed_events(123)


def test_different_seeds_permute_event_order():
    total_a, events_a = _fuzzed_events(123)
    total_b, events_b = _fuzzed_events(456)
    # Fuzzing permutes same-time ordering, never virtual time itself.
    assert total_a == total_b
    assert events_a != events_b
    assert sorted(events_a, key=repr) == sorted(events_b, key=repr)
