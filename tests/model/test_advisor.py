"""Tests for the strategy advisor (future-work module)."""

import pytest

from repro.errors import ConfigError
from repro.model.advisor import predict_all, recommend


def test_predict_all_covers_every_strategy():
    predictions = predict_all(rounds=100, compute_ns=500, num_blocks=30)
    assert set(predictions) == {
        "cpu-explicit",
        "cpu-implicit",
        "gpu-simple",
        "gpu-tree-2",
        "gpu-tree-3",
        "gpu-lockfree",
    }
    assert all(v > 0 for v in predictions.values())


def test_lockfree_recommended_for_sync_bound_workloads():
    rec = recommend(rounds=1000, compute_ns=500, num_blocks=30)
    assert rec.strategy == "gpu-lockfree"
    assert rec.ranking[0][0] == "gpu-lockfree"
    assert rec.ranking[-1][0] == "cpu-explicit"


def test_simple_recommended_for_tiny_grids():
    # At 1–3 blocks the single atomic chain beats lock-free's fixed cost.
    rec = recommend(rounds=1000, compute_ns=500, num_blocks=2)
    assert rec.strategy == "gpu-simple"


def test_rho_reported_against_implicit_baseline():
    rec = recommend(rounds=100, compute_ns=6000, num_blocks=30)
    # compute 6000/round vs implicit barrier 6000/round → ρ ≈ 0.5.
    assert rec.rho == pytest.approx(0.5, abs=0.05)


def test_ranking_sorted_ascending():
    rec = recommend(rounds=50, compute_ns=1000, num_blocks=16)
    times = [t for _name, t in rec.ranking]
    assert times == sorted(times)


def test_validation():
    with pytest.raises(ConfigError):
        predict_all(rounds=10, compute_ns=100, num_blocks=0)
