"""Tests for the calibrated timing constants."""

import dataclasses

import pytest

from repro.model.calibration import (
    ATOMIC_NS,
    CalibratedTimings,
    HOST_LAUNCH_NS,
    KERNEL_SETUP_NS,
    KERNEL_TEARDOWN_NS,
    SPIN_READ_NS,
    SYNCTHREADS_NS,
    default_timings,
)


def test_defaults_match_module_constants():
    t = default_timings()
    assert t.host_launch_ns == HOST_LAUNCH_NS
    assert t.atomic_ns == ATOMIC_NS
    assert t.kernel_setup_ns == KERNEL_SETUP_NS


def test_implicit_barrier_is_setup_plus_teardown():
    t = default_timings()
    assert t.cpu_implicit_barrier_ns == KERNEL_SETUP_NS + KERNEL_TEARDOWN_NS


def test_explicit_barrier_adds_serial_launch():
    t = default_timings()
    assert t.cpu_explicit_barrier_ns == t.cpu_implicit_barrier_ns + HOST_LAUNCH_NS


def test_calibration_anchors_from_the_paper():
    """The derivations in the module docstring must actually hold."""
    t = default_timings()
    # CPU implicit sync ≈ 6 µs/round (Fig. 11: 60 ms / 10 000 rounds).
    assert t.cpu_implicit_barrier_ns == 6_000
    # Lock-free ≈ 1.6 µs so implicit/lock-free ≈ 3.7 and explicit ≈ 7.8.
    lockfree = (
        t.lockfree_overhead_ns
        + 2 * t.global_write_ns
        + 2 * t.spin_read_ns
        + 2 * t.syncthreads_ns
    )
    assert lockfree == 1_600
    assert t.cpu_implicit_barrier_ns / lockfree == pytest.approx(3.7, abs=0.1)
    assert t.cpu_explicit_barrier_ns / lockfree == pytest.approx(7.8, abs=0.1)
    # GPU simple sync crosses CPU implicit between 23 and 24 blocks.
    fixed = SPIN_READ_NS + SYNCTHREADS_NS
    assert 23 * ATOMIC_NS + fixed < 6_000 < 24 * ATOMIC_NS + fixed


def test_timings_are_immutable():
    t = default_timings()
    with pytest.raises(dataclasses.FrozenInstanceError):
        t.atomic_ns = 1  # type: ignore[misc]


def test_negative_timing_rejected():
    with pytest.raises(ValueError):
        CalibratedTimings(atomic_ns=-1)


def test_replace_derives_variants():
    t = dataclasses.replace(default_timings(), atomic_ns=100)
    assert t.atomic_ns == 100
    assert t.spin_read_ns == default_timings().spin_read_ns
