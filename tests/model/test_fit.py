"""Tests for inverse calibration (fitting constants from measurements)."""

import pytest

from repro.errors import ConfigError
from repro.model.calibration import default_timings
from repro.model.fit import characterize, fit_constant, fit_simple


def measured_sweep(strategy: str, blocks, rounds=5):
    """Per-round barrier cost measured from the simulator."""
    from repro.algorithms import MeanMicrobench
    from repro.harness import run
    from repro.harness.phases import compute_only, sync_time_ns

    micro = MeanMicrobench(rounds=rounds, num_blocks_hint=max(blocks))
    out = {}
    for n in blocks:
        null = compute_only(micro, n)
        result = run(micro, strategy, n)
        out[n] = sync_time_ns(result, null) / rounds
    return out


class TestFitSimple:
    def test_recovers_calibration_from_measurement(self):
        """The end-to-end closure: measure GPU-simple costs on the
        simulator, fit Eq. 6, get the calibration constants back."""
        t = default_timings()
        sweep = measured_sweep("gpu-simple", [2, 8, 16, 24, 30])
        fit = fit_simple(list(sweep), list(sweep.values()))
        assert fit.slope == pytest.approx(t.atomic_ns, abs=0.5)
        assert fit.intercept == pytest.approx(
            t.spin_read_ns + t.syncthreads_ns, abs=2.0
        )
        assert fit.residual_rms < 1.0

    def test_exact_synthetic_line(self):
        fit = fit_simple([1, 2, 3], [10, 20, 30])
        assert fit.slope == pytest.approx(10)
        assert fit.intercept == pytest.approx(0, abs=1e-9)
        assert fit.predict(10) == pytest.approx(100)

    def test_validation(self):
        with pytest.raises(ConfigError):
            fit_simple([1], [10])
        with pytest.raises(ConfigError):
            fit_simple([1, 2], [10])


class TestFitConstant:
    def test_recovers_lockfree_constant(self):
        sweep = measured_sweep("gpu-lockfree", [2, 8, 30])
        fit = fit_constant(list(sweep.values()))
        assert fit.intercept == pytest.approx(1600.0)
        assert fit.residual_rms == 0.0
        assert fit.slope == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            fit_constant([])


class TestCharacterize:
    def test_device_characterization_shapes(self):
        sweeps = {
            "gpu-simple": measured_sweep("gpu-simple", [2, 16, 30]),
            "gpu-lockfree": measured_sweep("gpu-lockfree", [2, 16, 30]),
        }
        fits = characterize(sweeps)
        assert fits["gpu-simple"].slope > 100  # an atomic costs real time
        assert fits["gpu-lockfree"].slope == 0.0
        # Lock-free beats simple from small N on, per the fits.
        n = 10
        assert fits["gpu-lockfree"].predict(n) < fits["gpu-simple"].predict(n)
