"""Tests for Eq. 2: the synchronization-speedup bound."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.model.speedup import kernel_speedup, max_speedup, rho


def test_rho_basic():
    assert rho(50, 100) == 0.5


def test_rho_validation():
    with pytest.raises(ConfigError):
        rho(10, 0)
    with pytest.raises(ConfigError):
        rho(-1, 10)
    with pytest.raises(ConfigError):
        rho(11, 10)


def test_eq2_known_value():
    # ρ=0.5, S_S=3.7 → 1/(0.5 + 0.5/3.7) ≈ 1.574.
    assert kernel_speedup(0.5, 3.7) == pytest.approx(1.5745, abs=1e-3)


def test_no_sync_speedup_means_no_kernel_speedup():
    assert kernel_speedup(0.3, 1.0) == pytest.approx(1.0)


def test_amdahl_ceiling():
    assert max_speedup(0.5) == 2.0
    assert kernel_speedup(0.5, math.inf) == 2.0
    assert max_speedup(0.0) == math.inf


def test_paper_intuition_smaller_rho_gains_more():
    """§4: "the smaller the ρ is, the more speedup can be gained"."""
    fft = kernel_speedup(0.8, 3.7)  # FFT: ρ > 0.8
    swat = kernel_speedup(0.5, 3.7)  # SWat/bitonic: ρ ≈ 0.5
    assert swat > fft


def test_validation():
    with pytest.raises(ConfigError):
        kernel_speedup(1.5, 2.0)
    with pytest.raises(ConfigError):
        kernel_speedup(0.5, 0.0)
    with pytest.raises(ConfigError):
        max_speedup(-0.1)


@given(
    rho_value=st.floats(0.01, 1.0),
    sync_speedup=st.floats(1.0, 1000.0),
)
def test_speedup_bounded_by_amdahl(rho_value, sync_speedup):
    s = kernel_speedup(rho_value, sync_speedup)
    assert 1.0 <= s + 1e-12
    assert s <= max_speedup(rho_value) + 1e-9


@given(rho_value=st.floats(0.01, 0.99))
def test_speedup_monotone_in_sync_speedup(rho_value):
    assert kernel_speedup(rho_value, 4.0) >= kernel_speedup(rho_value, 2.0)
