"""Tests for Eqs. 6–9: barrier cost models and tree grouping."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.model.barrier_costs import (
    lockfree_cost,
    simple_cost,
    tree_cost,
    tree_group_sizes,
    tree_level_plan,
    tree_num_groups,
)
from repro.model.calibration import default_timings


class TestSimpleCost:
    def test_eq6_linear_in_blocks(self):
        t = default_timings()
        for n in range(1, 31):
            assert simple_cost(n) == n * t.atomic_ns + t.spin_read_ns + t.syncthreads_ns

    def test_slope_is_atomic_cost(self):
        t = default_timings()
        assert simple_cost(11) - simple_cost(10) == t.atomic_ns

    def test_crosses_cpu_implicit_between_23_and_24(self):
        t = default_timings()
        assert simple_cost(23) < t.cpu_implicit_barrier_ns < simple_cost(24)

    def test_rejects_non_positive_blocks(self):
        with pytest.raises(ConfigError):
            simple_cost(0)


class TestGrouping:
    def test_two_level_group_count_is_ceil_sqrt(self):
        # Eq. 8: m = ceil(sqrt(N)).
        for n in range(1, 31):
            assert tree_num_groups(n, 2) == min(n, math.ceil(math.sqrt(n)))

    def test_perfect_square_partition(self):
        # Paper: if m^2 == N, every group holds m blocks.
        assert tree_group_sizes(25, 5) == [5, 5, 5, 5, 5]
        assert tree_group_sizes(16, 4) == [4, 4, 4, 4]

    def test_paper_partition_rule(self):
        # First m-1 groups hold floor(N/(m-1)); the last takes the rest.
        assert tree_group_sizes(11, 4) == [3, 3, 3, 2]
        assert tree_group_sizes(30, 6) == [6, 6, 6, 6, 6]  # empty last dropped

    def test_more_groups_than_blocks(self):
        assert tree_group_sizes(3, 5) == [1, 1, 1]

    @given(n=st.integers(1, 512), m=st.integers(1, 64))
    def test_partition_is_total_and_positive(self, n, m):
        sizes = tree_group_sizes(n, m)
        assert sum(sizes) == n
        assert all(s > 0 for s in sizes)

    @given(n=st.integers(1, 512), levels=st.integers(2, 5))
    def test_plan_conserves_blocks(self, n, levels):
        plan = tree_level_plan(n, levels)
        assert len(plan) == levels
        assert sum(plan[0]) == n
        # Each level's participants are the previous level's groups.
        for lower, upper in zip(plan, plan[1:]):
            assert sum(upper) == len(lower)
        # The top level is a single group.
        assert len(plan[-1]) == 1

    def test_plan_example_from_paper_sizes(self):
        assert tree_level_plan(11, 2) == [[3, 3, 3, 2], [4]]

    def test_plan_rejects_single_level(self):
        with pytest.raises(ConfigError):
            tree_level_plan(8, 1)


class TestTreeCost:
    def test_eq7_two_level_formula(self):
        # t = (n̂·t_a + t_c1) + (m·t_a + t_c2) + closing syncthreads.
        t = default_timings()
        plan = tree_level_plan(30, 2)
        n_hat, m = max(plan[0]), len(plan[0])
        expected = (
            (n_hat * t.atomic_ns + t.spin_read_ns + t.tree_level_overhead_ns)
            + (m * t.atomic_ns + t.spin_read_ns + t.tree_level_overhead_ns)
            + t.syncthreads_ns
        )
        assert tree_cost(30, 2) == expected

    def test_tree_beats_simple_from_11_blocks(self):
        # Paper §7.2: threshold 11 for 2-level tree vs simple.
        assert tree_cost(10, 2) > simple_cost(10)
        assert tree_cost(11, 2) < simple_cost(11)

    def test_two_level_beats_three_level_up_to_30(self):
        # Paper Fig. 13/14: 2-level is always better in the 9–30 range.
        for n in range(9, 31):
            assert tree_cost(n, 2) <= tree_cost(n, 3)

    @given(n=st.integers(1, 256))
    def test_tree_cost_monotone_nondecreasing(self, n):
        assert tree_cost(n + 1, 2) >= tree_cost(n, 2)

    def test_deeper_trees_allowed(self):
        assert tree_cost(64, 4) > 0

    def test_rejects_single_level(self):
        with pytest.raises(ConfigError):
            tree_cost(8, 1)


class TestLockfreeCost:
    def test_eq9_independent_of_blocks(self):
        costs = {lockfree_cost(n) for n in range(1, 31)}
        assert len(costs) == 1

    def test_calibrated_value(self):
        assert lockfree_cost(30) == 1_600

    def test_lockfree_beats_everything_at_moderate_grids(self):
        # Paper §5.4 observation 5: lock-free is best "for more than 3
        # blocks".  Our calibration puts the simple/lock-free crossover at
        # N = 6 (1 550 vs 1 600 ns at N = 5); the qualitative claim — a
        # small constant threshold beyond which lock-free always wins —
        # holds (recorded in EXPERIMENTS.md).
        for n in range(6, 31):
            assert lockfree_cost(n) < simple_cost(n)
            assert lockfree_cost(n) < tree_cost(n, 2)
            assert lockfree_cost(n) < tree_cost(n, 3)

    def test_simple_wins_at_tiny_grids(self):
        assert simple_cost(1) < lockfree_cost(1)
        assert simple_cost(3) < lockfree_cost(3)
