"""Tests that the paper-data module is internally consistent and that the
simulated device matches the paper's testbed description."""

from repro.gpu.presets import get_preset
from repro.model import paper_data
from repro.model.barrier_costs import simple_cost, tree_cost
from repro.model.calibration import default_timings


def test_table1_values_ordered():
    t1 = paper_data.TABLE1_SYNC_PCT
    assert t1["fft"].value < t1["swat"].value < t1["bitonic"].value


def test_headline_ratio_consistency():
    """7.8 / 3.7 ≈ the explicit/implicit ratio the calibration encodes."""
    h = paper_data.HEADLINE
    ratio = (
        h["micro_lockfree_vs_explicit"].value
        / h["micro_lockfree_vs_implicit"].value
    )
    t = default_timings()
    assert abs(ratio - t.cpu_explicit_barrier_ns / t.cpu_implicit_barrier_ns) < 0.06


def test_device_config_matches_paper_section2():
    cfg = get_preset("gtx280")
    g = paper_data.GTX280
    assert cfg.num_sms == g["num_sms"].value
    assert cfg.total_sps == g["sps"].value
    assert cfg.clock_mhz == g["clock_mhz"].value
    assert cfg.shared_mem_per_sm == g["shared_mem_kb"].value * 1024
    assert cfg.global_mem_bytes == g["global_mem_gb"].value * 1024**3
    assert cfg.global_bandwidth_gbps == g["bandwidth_gbps"].value


def test_default_threads_match_paper():
    from repro.algorithms import FFT, BitonicSort, SmithWaterman

    assert FFT.default_threads == paper_data.THREADS_PER_BLOCK["fft"]
    assert SmithWaterman.default_threads == paper_data.THREADS_PER_BLOCK["swat"]
    assert BitonicSort.default_threads == paper_data.THREADS_PER_BLOCK["bitonic"]


def test_model_crossovers_match_paper_claims():
    """The Eq. 6/7 models reproduce the §5.4 crossover claims."""
    t = default_timings()
    c = paper_data.CROSSOVERS
    n = int(c[("cpu-implicit", "gpu-simple")].value)  # 24
    assert simple_cost(n - 1, t) < t.cpu_implicit_barrier_ns < simple_cost(n, t)
    n = int(c[("gpu-simple", "gpu-tree-2")].value)  # 11
    assert tree_cost(n, 2, t) < simple_cost(n, t)
    assert tree_cost(n - 1, 2, t) > simple_cost(n - 1, t)


def test_claims_registry_complete():
    groups = paper_data.claims()
    assert set(groups) == {
        "table1_sync_pct",
        "headline",
        "crossovers",
        "threads_per_block",
        "gtx280",
    }
    for claim in paper_data.TABLE1_SYNC_PCT.values():
        assert claim.where
