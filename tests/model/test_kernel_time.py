"""Tests for Eqs. 1, 3, 4, 5: kernel execution-time models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.model.barrier_costs import lockfree_cost
from repro.model.calibration import default_timings
from repro.model.kernel_time import (
    cpu_explicit_time,
    cpu_implicit_time,
    gpu_sync_time,
    total_time,
)


def test_eq1_generic_sum():
    assert total_time([1, 2], [10, 20], [100, 200]) == 333


def test_eq1_rejects_mismatched_lengths():
    with pytest.raises(ConfigError):
        total_time([1], [2, 3], [4])


def test_eq3_explicit_pays_launch_every_round():
    t = default_timings()
    one = cpu_explicit_time(1, 500)
    two = cpu_explicit_time(2, 500)
    assert two - one == 500 + t.host_launch_ns + t.cpu_implicit_barrier_ns


def test_eq4_implicit_exposes_only_first_launch():
    t = default_timings()
    one = cpu_implicit_time(1, 500)
    two = cpu_implicit_time(2, 500)
    # Marginal round cost excludes the launch: it pipelines.
    assert two - one == 500 + t.cpu_implicit_barrier_ns
    assert one == t.host_launch_ns + 500 + t.cpu_implicit_barrier_ns


def test_eq5_gpu_sync_single_launch():
    t = default_timings()
    barrier = lockfree_cost(30, t)
    m = 100
    expected = (
        t.host_launch_ns + t.cpu_implicit_barrier_ns + m * (500 + barrier)
    )
    assert gpu_sync_time(m, 500, barrier) == expected


def test_per_round_sequences_accepted():
    per_round = [100, 200, 300]
    assert cpu_implicit_time(3, per_round) == cpu_implicit_time(3, 200)


def test_per_round_sequence_length_checked():
    with pytest.raises(ConfigError):
        cpu_implicit_time(3, [1, 2])


def test_rounds_must_be_positive():
    with pytest.raises(ConfigError):
        cpu_implicit_time(0, 100)


@given(rounds=st.integers(1, 1000), compute=st.integers(0, 100_000))
def test_ordering_explicit_ge_implicit_ge_lockfree(rounds, compute):
    """For every workload size: explicit ≥ implicit ≥ GPU lock-free."""
    t = default_timings()
    explicit = cpu_explicit_time(rounds, compute, t)
    implicit = cpu_implicit_time(rounds, compute, t)
    lockfree = gpu_sync_time(rounds, compute, lockfree_cost(30, t), t)
    assert explicit >= implicit
    # One extra setup/teardown is amortized over rounds; for rounds >= 2
    # the device barrier always wins at these calibrations.
    if rounds >= 2:
        assert implicit >= lockfree


@given(rounds=st.integers(1, 100), compute=st.integers(0, 10_000))
def test_gpu_sync_monotone_in_barrier_cost(rounds, compute):
    cheap = gpu_sync_time(rounds, compute, 100)
    pricey = gpu_sync_time(rounds, compute, 5000)
    assert pricey > cheap
