"""Tests for crossover sensitivity analysis."""

import pytest

from repro.errors import ConfigError
from repro.model.calibration import default_timings
from repro.model.sensitivity import (
    crossover_blocks,
    lockfree_vs_simple,
    simple_vs_implicit,
    sweep_parameter,
    tree2_vs_simple,
)


def test_calibrated_crossovers_match_the_paper():
    t = default_timings()
    assert crossover_blocks(simple_vs_implicit, t) == 24  # §5.4 obs. 3
    assert crossover_blocks(tree2_vs_simple, t) == 11  # §5.4 obs. 4
    assert crossover_blocks(lockfree_vs_simple, t) == 6  # our calibration


def test_cheaper_atomics_push_crossovers_out():
    """Fermi-style cheap atomics delay every anti-atomic crossover —
    the quantitative version of the generations study."""
    rows = sweep_parameter("atomic_ns", [240, 120, 60])
    implicit = [r["simple_vs_implicit"] for r in rows]
    lockfree = [r["lockfree_vs_simple"] for r in rows]
    assert implicit[0] < implicit[1] < implicit[2]
    assert lockfree[0] < lockfree[1] < lockfree[2]


def test_crossover_none_when_strategy_never_wins():
    # With absurdly cheap atomics, lock-free never beats simple in range.
    rows = sweep_parameter("atomic_ns", [1], max_blocks=64)
    assert rows[0]["lockfree_vs_simple"] is None


def test_cheaper_kernel_boundary_moves_implicit_crossover_down():
    rows = sweep_parameter("kernel_setup_ns", [3000, 1000])
    assert rows[1]["simple_vs_implicit"] < rows[0]["simple_vs_implicit"]


def test_validation():
    with pytest.raises(ConfigError):
        sweep_parameter("warp_speed_ns", [1])
    with pytest.raises(ConfigError):
        crossover_blocks(simple_vs_implicit, max_blocks=0)
