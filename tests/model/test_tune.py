"""Topology-resolved cost predictions and the ``repro tune`` layer."""

import json

import pytest

from repro.errors import ConfigError
from repro.gpu.presets import get_preset, resolve_timing_context
from repro.gpu.topology import Topology
from repro.model.advisor import predict_all, recommend
from repro.model.barrier_costs import lockfree_cost, simple_cost, tree_cost
from repro.model.tune import MODELED_STRATEGIES, tune_workload

# ---------------------------------------------------------------------------
# Topology surcharges on the barrier cost models
# ---------------------------------------------------------------------------


def test_single_device_topology_is_the_paper_identity():
    flat = Topology()
    for n in (1, 2, 8, 30):
        assert simple_cost(n, topology=flat) == simple_cost(n)
        assert tree_cost(n, 2, topology=flat) == tree_cost(n, 2)
        assert lockfree_cost(n, topology=flat) == lockfree_cost(n)


def test_simple_cost_charges_every_remote_arrival():
    topo = Topology(kind="multi-device", num_domains=2, crossing_ns=1_500)
    n = 8  # blocks 4..7 land on domain 1
    base = simple_cost(n)
    # 4 remote atomics + 1 remote release observation on the critical path.
    assert simple_cost(n, topology=topo) == base + 4 * 1_500 + 1_500


def test_lockfree_cost_charges_exactly_two_crossings():
    topo = Topology(kind="multi-device", num_domains=2, crossing_ns=1_500)
    base = lockfree_cost(8)
    assert lockfree_cost(8, topology=topo) == base + 2 * 1_500
    # Independent of how many blocks are remote.
    assert lockfree_cost(30, topology=topo) == lockfree_cost(30) + 2 * 1_500


def test_tree_cost_charges_one_crossing_per_remote_domain():
    topo = Topology(kind="cluster", num_domains=4, crossing_ns=250)
    n = 8  # all 4 domains occupied
    base = tree_cost(n, 2)
    assert tree_cost(n, 2, topology=topo) == base + 3 * 250 + 250


def test_grid_confined_to_one_domain_pays_nothing():
    # domain_of partitions contiguously: a 1-block grid sits in domain 0.
    topo = Topology(kind="multi-device", num_domains=2, crossing_ns=1_500)
    assert simple_cost(1, topology=topo) == simple_cost(1)
    assert lockfree_cost(1, topology=topo) == lockfree_cost(1)
    assert tree_cost(1, 2, topology=topo) == tree_cost(1, 2)


# ---------------------------------------------------------------------------
# The advisor under a device config
# ---------------------------------------------------------------------------


def test_advisor_reproduces_fig11_ordering_on_gtx280():
    """Paper Fig. 11: lock-free beats simple at high block counts."""
    cfg = get_preset("gtx280")
    preds = predict_all(100, 5_000, 30, config=cfg)
    assert preds["gpu-lockfree"] < preds["gpu-simple"]
    assert recommend(100, 5_000, 30, config=cfg).strategy == "gpu-lockfree"


def test_advisor_prefers_simple_at_tiny_grids_on_gtx280():
    cfg = get_preset("gtx280")
    assert recommend(100, 5_000, 4, config=cfg).strategy == "gpu-simple"


@pytest.mark.parametrize("preset", ["dual_gpu", "riscv_cluster_1024"])
def test_recommendation_flips_on_multi_domain_presets(preset):
    """The same 4-block workload that favours gpu-simple on the paper's
    card flips to gpu-lockfree once arrivals cross an interconnect."""
    cfg = get_preset(preset)
    assert recommend(100, 5_000, 4, config=cfg).strategy == "gpu-lockfree"


def test_advisor_config_resolves_preset_timings():
    cfg = get_preset("fermi_class")
    via_config = predict_all(10, 1_000, 8, config=cfg)
    via_timings = predict_all(10, 1_000, 8, cfg.timings)
    assert via_config == via_timings  # single-device: topology is a no-op


def test_explicit_timings_win_over_config():
    gtx = get_preset("gtx280")
    dual = get_preset("dual_gpu")
    preds = predict_all(10, 1_000, 8, gtx.timings, config=dual)
    # Timings from gtx280, topology from dual_gpu: lockfree pays exactly
    # the two crossings over its flat-gtx280 prediction.
    flat = predict_all(10, 1_000, 8, gtx.timings)
    assert preds["gpu-lockfree"] == flat["gpu-lockfree"] + 10 * 2 * 1_500


def test_resolve_timing_context_matches_preset():
    timings, topology = resolve_timing_context("dual_gpu")
    cfg = get_preset("dual_gpu")
    assert timings == cfg.timings
    assert topology == cfg.topology
    with pytest.raises(ConfigError):
        resolve_timing_context("no-such-preset")


# ---------------------------------------------------------------------------
# tune_workload
# ---------------------------------------------------------------------------


def test_tune_optimal_configuration_has_no_advisory():
    report = tune_workload(100, 5_000, 30, "gpu-lockfree", "gtx280")
    assert report.optimal
    assert report.advisory is None
    assert report.predicted_speedup == 1.0
    assert report.exit_code() == 0
    assert report.exit_code(strict=True) == 0
    assert "matches the cost-model recommendation" in report.render()


def test_tune_suboptimal_configuration_emits_sc100():
    report = tune_workload(100, 5_000, 30, "gpu-simple", "gtx280")
    assert not report.optimal
    assert report.recommended == "gpu-lockfree"
    advisory = report.advisory
    assert advisory is not None
    assert advisory.code == "SC100"
    assert advisory.severity == "advice"
    assert advisory.file == "<workload:gtx280>"
    assert advisory.unit == "gpu-simple"
    assert "gpu-lockfree" in advisory.message
    assert report.predicted_speedup > 1.5
    # Advisory severity: exit 0 unless strict.
    assert report.exit_code() == 0
    assert report.exit_code(strict=True) == 1


def test_tune_recommendation_changes_with_preset():
    """ISSUE acceptance: the same workload tunes differently on the
    multi-domain presets."""
    on_gtx = tune_workload(100, 5_000, 4, "gpu-simple", "gtx280")
    assert on_gtx.optimal
    for preset in ("dual_gpu", "riscv_cluster_1024"):
        report = tune_workload(100, 5_000, 4, "gpu-simple", preset)
        assert not report.optimal
        assert report.recommended == "gpu-lockfree"
        assert report.advisory is not None


def test_tune_rejects_unmodeled_strategy():
    with pytest.raises(ConfigError, match="unmodeled"):
        tune_workload(100, 5_000, 8, "gpu-sense-reversal")


def test_tune_report_envelope_round_trip():
    report = tune_workload(100, 5_000, 30, "gpu-simple", "gtx280")
    envelope = json.loads(report.to_json())
    assert envelope["schema"] == 3
    assert envelope["kind"] == "tune-report"
    assert envelope["configured"] == "gpu-simple"
    assert envelope["recommended"] == "gpu-lockfree"
    assert envelope["optimal"] is False
    assert envelope["advisory"]["code"] == "SC100"
    assert set(envelope["predictions"]) == set(MODELED_STRATEGIES)


def test_tune_measured_sweep_validates_the_model():
    report = tune_workload(
        20, 5_000, 8, "gpu-lockfree", "gtx280", measure=True, measure_rounds=10
    )
    assert set(report.measured_sync_ns) == set(MODELED_STRATEGIES)
    assert report.measured_null_ns is not None
    assert all(v > 0 for v in report.measured_sync_ns.values())
    # The measured sweep agrees with the model's headline call: lock-free
    # synchronizes cheaper than simple at this grid.
    measured = report.measured_sync_ns
    assert measured["gpu-lockfree"] < measured["gpu-simple"]
    assert report.measured_best == "gpu-lockfree"
    assert "measured sync overhead" in report.render()
