"""Tests for the device-layer fault injection hooks."""

import pytest

from repro.errors import BarrierTimeoutError, FaultError
from repro.faults import FaultPlan, FaultSpec
from repro.harness.runner import run
from repro.sanitize.sanitizer import SkewedMicrobench


def micro(rounds=4, blocks=8):
    return SkewedMicrobench(rounds=rounds, num_blocks_hint=blocks)


def test_unarmed_device_has_no_fault_state():
    result = run(micro(), "gpu-lockfree", 8, keep_device=True)
    assert result.device.faults is None
    assert result.device.atomics.faulted_ops == 0
    assert result.faults_fired == 0


def test_straggler_slows_run_but_stays_correct():
    base = run(micro(), "gpu-lockfree", 8)
    plan = FaultPlan([FaultSpec("straggler", block=2, factor=4.0)])
    slow = run(micro(), "gpu-lockfree", 8, faults=plan)
    assert slow.verified is True
    assert slow.total_ns > base.total_ns
    assert slow.faults_fired == 1
    assert plan.fired_kinds == ["straggler"]


def test_spurious_wakeup_charges_latency_only():
    base = run(micro(), "gpu-lockfree", 8)
    plan = FaultPlan([FaultSpec("spurious-wakeup", block=1, count=6)])
    bumped = run(micro(), "gpu-lockfree", 8, faults=plan)
    assert bumped.verified is True
    assert bumped.total_ns >= base.total_ns
    assert plan.fired_kinds == ["spurious-wakeup"]


def test_hang_raises_typed_timeout_naming_the_fault():
    plan = FaultPlan([FaultSpec("hang", block=3, round=1)])
    with pytest.raises(BarrierTimeoutError) as info:
        run(micro(), "gpu-lockfree", 8, faults=plan)
    err = info.value
    assert err.strategy == "gpu-lockfree"
    assert any("injected hang" in reason for _, reason in err.stuck)
    assert any("hang" in d for d in err.faults)


def test_hang_never_escapes_as_deadlock():
    from repro.errors import DeadlockError

    for round_idx in range(4):
        plan = FaultPlan([FaultSpec("hang", block=0, round=round_idx)])
        try:
            run(micro(), "gpu-simple", 8, faults=plan)
        except BarrierTimeoutError:
            pass
        except DeadlockError as exc:  # pragma: no cover - the regression
            pytest.fail(f"DeadlockError escaped the watchdog: {exc}")


def test_driver_kill_raises_typed_fault_error():
    plan = FaultPlan([FaultSpec("driver-kill", at_ns=5_000)])
    with pytest.raises(FaultError, match="driver-kill"):
        run(micro(), "gpu-lockfree", 8, faults=plan)
    assert plan.fired_kinds == ["driver-kill"]


def test_driver_kill_after_kernel_end_dissipates():
    plan = FaultPlan([FaultSpec("driver-kill", at_ns=10_000_000_000)])
    result = run(micro(), "gpu-lockfree", 8, faults=plan)
    assert result.verified is True
    assert plan.fired == []  # the kernel finished first


def test_atomic_drop_counts_faulted_op():
    # gpu-simple's barrier is built on atomicAdd, so a dropped store
    # starves the mutex count and the watchdog must catch the stall.
    plan = FaultPlan([FaultSpec("atomic-drop", block=0)])
    with pytest.raises(BarrierTimeoutError):
        run(micro(), "gpu-simple", 8, faults=plan)
    assert plan.fired_kinds == ["atomic-drop"]


def test_mem_corrupt_on_lockfree_flag_store_stalls_and_is_caught():
    # gpu-lockfree's Arrayin flags travel through gwrite; corrupting the
    # store to zero means the checker block never sees the flag.
    plan = FaultPlan([FaultSpec("mem-corrupt", block=2)])
    with pytest.raises(BarrierTimeoutError):
        run(micro(), "gpu-lockfree", 8, faults=plan)
    assert plan.fired_kinds == ["mem-corrupt"]


def test_host_barrier_immune_to_hang():
    """The kernel boundary always synchronizes (paper §4.1): a 'hang'
    planned against a host-side barrier has no injection point."""
    plan = FaultPlan([FaultSpec("hang", block=3, round=1)])
    result = run(micro(), "cpu-implicit", 8, faults=plan)
    assert result.verified is True
    assert plan.fired == []


def test_fired_faults_carry_attempt_and_time():
    plan = FaultPlan([FaultSpec("straggler", block=0, factor=2.0)])
    run(micro(), "gpu-lockfree", 8, faults=plan)
    (fault,) = plan.fired
    assert fault.attempt == 1
    assert fault.at_ns >= 0
    assert "straggler" in fault.description
