"""Tests for the crash-point registry, plans, and firing semantics.

A ``kill`` action SIGKILLs the current process, so every firing test
monkeypatches :func:`crashpoints._kill_self` and asserts it was
*called* — except the one subprocess test that proves the real thing.
"""

import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import FaultError
from repro.faults import crashpoints
from repro.faults.crashpoints import (
    CRASH_ACTIONS,
    CRASHPOINTS,
    CrashPlan,
    CrashSpec,
    register_crashpoint,
)

# Registered once for this module; re-registration below proves
# idempotence, so the module-level registration is safe under re-import.
POINT = register_crashpoint(
    "test.crashpoints.site",
    "a synthetic site for registry tests",
    actions=("kill", "raise-operational", "raise-oserror", "torn-write"),
)


@pytest.fixture(autouse=True)
def disarmed():
    """Every test starts and ends unarmed."""
    crashpoints.disarm()
    yield
    crashpoints.disarm()


@pytest.fixture
def kills(monkeypatch):
    """Replace the SIGKILL with a recording no-op."""
    calls = []
    monkeypatch.setattr(crashpoints, "_kill_self", lambda: calls.append(1))
    return calls


# -- registry ---------------------------------------------------------------


def test_reregistration_with_identical_metadata_is_noop():
    assert (
        register_crashpoint(
            "test.crashpoints.site",
            "a synthetic site for registry tests",
            actions=("kill", "raise-operational", "raise-oserror", "torn-write"),
        )
        == POINT
    )


def test_changing_registered_metadata_is_typed():
    with pytest.raises(FaultError, match="append-only"):
        register_crashpoint(
            "test.crashpoints.site", "a different description"
        )


def test_unknown_action_or_scenario_is_typed():
    with pytest.raises(FaultError, match="unknown action"):
        register_crashpoint("test.bad", "x", actions=("explode",))
    with pytest.raises(FaultError, match="unknown scenario"):
        register_crashpoint("test.bad", "x", scenario="apocalypse")


def test_instrumented_modules_register_their_points():
    # Importing the durability layer populates the registry.
    import repro.parallel.cache  # noqa: F401
    import repro.parallel.journal  # noqa: F401
    import repro.service.jobs  # noqa: F401
    import repro.service.reaper  # noqa: F401
    import repro.service.worker  # noqa: F401

    expected = {
        "cache.put.pre-rename",
        "cache.put.post-rename",
        "journal.append",
        "journal.replay",
        "reaper.sweep",
        "worker.heartbeat",
    } | {
        f"jobs.{op}.{side}"
        for op in (
            "submit", "claim", "heartbeat", "complete",
            "fail", "release", "requeue",
        )
        for side in ("pre-commit", "post-commit")
    }
    assert expected <= set(CRASHPOINTS)
    for name in expected:
        point = CRASHPOINTS[name]
        assert point.description
        assert set(point.actions) <= set(CRASH_ACTIONS)


# -- specs and plans --------------------------------------------------------


def test_spec_validation_is_typed():
    with pytest.raises(FaultError, match="unknown crash action"):
        CrashSpec(POINT, "explode")
    with pytest.raises(FaultError, match="hit"):
        CrashSpec(POINT, hit=0)
    with pytest.raises(FaultError, match="keep_bytes"):
        CrashSpec(POINT, "torn-write", keep_bytes=-1)


def test_spec_describe_is_compact():
    assert CrashSpec(POINT, "kill", hit=2).describe() == f"kill@{POINT}#2"
    torn = CrashSpec(POINT, "torn-write", keep_bytes=7)
    assert torn.describe() == f"torn-write@{POINT}#1, keep 7B"


def test_generate_is_deterministic_per_seed():
    a = CrashPlan.generate(42)
    b = CrashPlan.generate(42)
    assert a.specs == b.specs
    assert a.seed == 42
    # Different seeds eventually draw different crashes.
    assert any(
        CrashPlan.generate(s).specs != a.specs for s in range(100)
    )
    spec = a.specs[0]
    assert spec.point in CRASHPOINTS
    assert spec.action in CRASHPOINTS[spec.point].actions


def test_generate_rejects_unknown_points():
    with pytest.raises(FaultError, match="unknown crash point"):
        CrashPlan.generate(1, points=["no.such.point"])


def test_env_round_trip():
    plan = CrashPlan(
        [CrashSpec(POINT, "torn-write", hit=3, keep_bytes=5)],
        seed=7,
        clock_skew_s=-0.6,
    )
    back = CrashPlan.from_env(plan.to_env())
    assert back.specs == plan.specs
    assert back.seed == 7
    assert back.clock_skew_s == -0.6


def test_malformed_env_is_typed():
    with pytest.raises(FaultError, match="serialized CrashPlan"):
        CrashPlan.from_env("{ not json")
    with pytest.raises(FaultError, match="'specs' list"):
        CrashPlan.from_env("[1, 2, 3]")


# -- firing -----------------------------------------------------------------


def test_fire_is_noop_when_unarmed(kills):
    crashpoints.fire(POINT)
    assert kills == []


def test_fire_counts_hits_and_fires_on_the_nth(kills):
    with crashpoints.armed(CrashPlan([CrashSpec(POINT, "kill", hit=3)])) as plan:
        crashpoints.fire(POINT)
        crashpoints.fire(POINT)
        assert kills == []
        crashpoints.fire(POINT)
        assert kills == [1]
        assert [(f.point, f.hit) for f in plan.fired] == [(POINT, 3)]
    # Disarmed again: further fires are free.
    crashpoints.fire(POINT)
    assert kills == [1]


def test_arm_resets_hit_counters(kills):
    crashpoints.arm(CrashPlan([CrashSpec(POINT, "kill", hit=2)]))
    crashpoints.fire(POINT)
    crashpoints.arm(CrashPlan([CrashSpec(POINT, "kill", hit=2)]))
    crashpoints.fire(POINT)  # hit 1 again, not 2
    assert kills == []


def test_fire_unregistered_point_while_armed_is_typed():
    with crashpoints.armed(CrashPlan([CrashSpec(POINT, "kill")])):
        with pytest.raises(FaultError, match="unregistered"):
            crashpoints.fire("never.registered")


def test_raise_actions_raise_the_advertised_errors():
    import sqlite3

    with crashpoints.armed(
        CrashPlan([CrashSpec(POINT, "raise-operational", hit=1)])
    ):
        with pytest.raises(sqlite3.OperationalError, match="database is locked"):
            crashpoints.fire(POINT)
    with crashpoints.armed(
        CrashPlan([CrashSpec(POINT, "raise-oserror", hit=1)])
    ):
        with pytest.raises(OSError, match="injected I/O error"):
            crashpoints.fire(POINT)


def test_torn_write_is_ignored_at_plain_fire_sites(kills):
    with crashpoints.armed(CrashPlan([CrashSpec(POINT, "torn-write")])):
        crashpoints.fire(POINT)  # nothing to tear here
    assert kills == []


def test_fire_write_tears_the_byte_prefix(tmp_path, kills):
    """The torn bytes must be on disk (fsync'd) and may split a UTF-8
    multi-byte sequence — exactly what the journal loader tolerates."""
    record = '{"value": "héllo wörld"}\n'
    data = record.encode("utf-8")
    path = tmp_path / "file.txt"
    with crashpoints.armed(CrashPlan([CrashSpec(POINT, "torn-write")])):
        with open(path, "w", encoding="utf-8") as handle:
            crashpoints.fire_write(POINT, handle, record)
    assert kills == [1]
    torn = path.read_bytes()
    assert torn == data[: len(data) // 2]
    with pytest.raises(UnicodeDecodeError):
        torn.decode("utf-8")  # the default cut splits "ö" for this record


def test_fire_write_honors_keep_bytes(tmp_path, kills):
    path = tmp_path / "file.txt"
    with crashpoints.armed(
        CrashPlan([CrashSpec(POINT, "torn-write", keep_bytes=3)])
    ):
        with open(path, "w", encoding="utf-8") as handle:
            crashpoints.fire_write(POINT, handle, "abcdef\n")
    assert path.read_bytes() == b"abc"


def test_fire_write_passes_text_through_when_not_due(tmp_path, kills):
    path = tmp_path / "file.txt"
    with open(path, "w", encoding="utf-8") as handle:
        crashpoints.fire_write(POINT, handle, "clean line\n")
    assert path.read_text() == "clean line\n"
    assert kills == []


# -- clock skew -------------------------------------------------------------


def test_skewed_clock_explicit_and_identity():
    base = lambda: 100.0  # noqa: E731
    assert crashpoints.skewed_clock(base, 0.0) is base
    assert crashpoints.skewed_clock(base, 2.5)() == 102.5
    assert crashpoints.skewed_clock(base, -2.5)() == 97.5


def test_skewed_clock_reads_the_armed_plan():
    base = lambda: 100.0  # noqa: E731
    assert crashpoints.clock_skew_s() == 0.0
    with crashpoints.armed(CrashPlan([], clock_skew_s=0.4)):
        assert crashpoints.clock_skew_s() == 0.4
        assert crashpoints.skewed_clock(base)() == 100.4
    # Binding happens at wrap time, by design: a worker builds its
    # clock once, at startup, from the plan it was armed with.
    assert crashpoints.skewed_clock(base)() == 100.0


# -- cross-process arming ---------------------------------------------------


def test_env_armed_subprocess_dies_of_sigkill(tmp_path):
    """The real thing, end to end: a subprocess armed via REPRO_CRASHPOINTS
    fires a registered point and dies of an uncatchable SIGKILL."""
    plan = CrashPlan([CrashSpec("test.sub.point", "kill", hit=2)])
    code = (
        "from repro.faults import crashpoints\n"
        "p = crashpoints.register_crashpoint('test.sub.point', 'sub test')\n"
        "assert crashpoints.armed_plan() is not None\n"
        "crashpoints.fire(p)\n"
        "print('survived hit 1', flush=True)\n"
        "crashpoints.fire(p)\n"
        "print('never printed', flush=True)\n"
    )
    import os

    env = dict(os.environ)
    env[crashpoints.ENV_VAR] = plan.to_env()
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", code],
        env=env,
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert proc.returncode == -signal.SIGKILL
    assert "survived hit 1" in proc.stdout
    assert "never printed" not in proc.stdout
