"""Tests for the chaos campaign and its sanitizer cross-check."""

from repro.faults import chaos_campaign
from repro.faults.chaos import ChaosReport, ChaosRunRecord


def test_small_campaign_is_clean_and_deterministic():
    a = chaos_campaign("gpu-lockfree", plans=8, seed=7)
    b = chaos_campaign("gpu-lockfree", plans=8, seed=7)
    assert a.clean, a.render()
    assert len(a.records) == 8
    assert [(r.seed, r.outcome, r.attempts) for r in a.records] == [
        (r.seed, r.outcome, r.attempts) for r in b.records
    ]


def test_campaign_outcomes_partition_the_runs():
    rep = chaos_campaign("gpu-simple", plans=10, seed=3)
    total = sum(
        rep.count(o) for o in ("ok", "recovered", "degraded", "failed")
    )
    assert total == len(rep.records) == 10


def test_hang_only_campaign_always_degrades_device_barrier():
    from repro.faults.plan import FaultPlan

    rep = chaos_campaign(
        "gpu-lockfree", plans=6, seed=11, max_faults=1
    )
    # Force it differently: build a campaign where we know the kinds.
    hang_records = [r for r in rep.records if "hang" in " ".join(r.fired)]
    for rec in hang_records:
        assert rec.outcome == "degraded", rec
        plan = FaultPlan.generate(rec.seed, 8, 4, max_faults=1)
        assert plan.descriptions == rec.planned  # seed replays the plan


def test_host_strategy_campaign_never_degrades():
    rep = chaos_campaign("cpu-implicit", plans=10, seed=5)
    assert rep.clean, rep.render()
    assert rep.count("degraded") == 0


def test_unknown_strategy_is_unexplained_not_crash():
    rep = chaos_campaign("no-such-barrier", plans=2, seed=1, cross_check=False)
    assert not rep.clean
    assert all(not r.explained for r in rep.records)


def test_render_mentions_verdict_and_counts():
    rep = chaos_campaign("gpu-lockfree", plans=4, seed=2)
    text = rep.render()
    assert "chaos campaign: gpu-lockfree" in text
    assert "verdict" in text
    assert "CLEAN" in text


def test_report_flags_unverified_result_records():
    rep = ChaosReport(
        strategy="s", algorithm="a", num_blocks=8, seed=0, plans=1
    )
    rep.records.append(
        ChaosRunRecord(
            seed=1,
            planned=["x"],
            outcome="ok",
            attempts=1,
            fired=[],
            explained=False,
            error="run returned unverified",
        )
    )
    assert not rep.clean
    assert "UNEXPLAINED" in rep.render()
