"""Tests for the crash-matrix harness (report logic + one live slice).

The full matrix — every point × every action × skew configs — runs in
CI's ``service-chaos`` job (``repro crashtest``); these tests pin the
report semantics and run one real single-point campaign end to end so
the harness itself cannot rot between full runs.
"""

import pytest

from repro.errors import FaultError
from repro.faults.crashtest import (
    SKEW_POINTS,
    CrashOutcome,
    CrashTestReport,
    crash_campaign,
)


def outcome(status: str, detail: str = "") -> CrashOutcome:
    return CrashOutcome(
        "jobs.claim.pre-commit", "kill", "success", "baseline", status, detail
    )


# -- report semantics -------------------------------------------------------


def test_report_ok_requires_all_pass_and_none_skipped():
    assert CrashTestReport([outcome("pass")], 10.0, 1.0).ok
    assert not CrashTestReport([outcome("fail", "boom")], 10.0, 1.0).ok
    assert not CrashTestReport(
        [outcome("pass"), outcome("skip", "budget")], 10.0, 1.0
    ).ok
    # An empty matrix proved nothing; it must not read as green.
    assert not CrashTestReport([], 10.0, 1.0).ok


def test_report_counts():
    report = CrashTestReport(
        [outcome("pass"), outcome("pass"), outcome("fail", "x"),
         outcome("skip", "y")],
        10.0,
        2.0,
    )
    assert (report.passed, report.failed, report.skipped) == (2, 1, 1)


def test_report_render_is_a_complete_table():
    report = CrashTestReport(
        [outcome("pass"), outcome("fail", "it broke")], 900.0, 12.3
    )
    text = report.render()
    assert "POINT" in text and "STATUS" in text
    assert "jobs.claim.pre-commit" in text
    assert "it broke" in text
    assert "1 passed, 1 failed, 0 skipped" in text
    assert "budget 900s" in text


# -- campaign validation ----------------------------------------------------


def test_campaign_rejects_unknown_points():
    with pytest.raises(FaultError, match="unknown crash point"):
        crash_campaign(points=["no.such.point"])


def test_campaign_rejects_negative_skew():
    with pytest.raises(FaultError, match="skew_s"):
        crash_campaign(points=["jobs.claim.pre-commit"], skew_s=-1.0)


def test_skew_points_are_registered():
    from repro.faults.crashpoints import CRASHPOINTS

    for name in SKEW_POINTS:
        assert name in CRASHPOINTS


def test_exhausted_budget_reports_skips_not_green(tmp_path):
    report = crash_campaign(
        points=["jobs.claim.pre-commit"],
        actions=["kill"],
        budget_s=0.0,
        skew_s=0.0,
        workdir=tmp_path,
    )
    assert report.skipped == 1 and report.passed == 0
    assert not report.ok
    assert "budget" in report.outcomes[0].detail


# -- one live slice ---------------------------------------------------------


def test_single_point_campaign_passes_live(tmp_path):
    """One real scenario end to end: arm a worker subprocess to die of
    a raised OperationalError inside the claim transaction, recover on
    a second host, and pass every invariant."""
    report = crash_campaign(
        points=["jobs.claim.post-commit"],
        actions=["raise-operational"],
        skew_s=0.0,
        workdir=tmp_path,
    )
    assert [o.status for o in report.outcomes] == ["pass"], report.render()
    assert report.ok
