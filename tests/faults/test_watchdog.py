"""Tests for the barrier watchdog's exact stall detection."""

import pytest

from repro.errors import ConfigError
from repro.faults import BarrierWatchdog
from repro.gpu.device import Device
from repro.simcore.effects import Delay, WaitUntil
from repro.simcore.signal import Signal


def test_deadline_validation():
    with pytest.raises(ConfigError):
        BarrierWatchdog(Device(), deadline_ns=0)


def test_watchdog_quiet_on_clean_run():
    device = Device()
    dog = BarrierWatchdog(device, deadline_ns=100, strategy_name="t")

    def worker():
        for _ in range(20):
            yield Delay(50)

    dog.arm()
    device.engine.spawn(worker(), "worker")
    device.run()
    assert dog.fired is False
    assert dog.checks >= 1  # it did look


def test_watchdog_detects_certain_stall():
    from repro.errors import DeadlockError

    device = Device()
    sig = Signal("never")
    dog = BarrierWatchdog(device, deadline_ns=100, strategy_name="t")

    def stuck():
        yield WaitUntil(sig, lambda: False, "waiting for godot")

    dog.arm()
    device.engine.spawn(stuck(), "stuck")
    # With no watched kernel handles the dog only *observes*: the stuck
    # process stays parked, so the drain still deadlocks — but the dog
    # recorded the stall first (the runner uses this to raise the typed
    # error instead).
    with pytest.raises(DeadlockError):
        device.run()
    assert dog.fired is True
    assert dog.fired_at == 100
    assert dog.stuck == [("stuck", "waiting for godot (signal 'never')")]


def test_watchdog_ignores_slow_but_live_processes():
    """Pending events = progress: a straggler 50x past the deadline is
    not a stall, so the deadline is pure detection latency."""
    device = Device()
    dog = BarrierWatchdog(device, deadline_ns=100, strategy_name="t")

    def straggler():
        yield Delay(5_000)  # 50 deadlines of honest work

    dog.arm()
    device.engine.spawn(straggler(), "slow")
    device.run()
    assert dog.fired is False


def test_watchdog_waker_pair_not_flagged():
    """A blocked process whose waker has a pending event is fine."""
    device = Device()
    sig = Signal("flag")
    state = {"ready": False}
    dog = BarrierWatchdog(device, deadline_ns=100, strategy_name="t")

    def waiter():
        yield WaitUntil(sig, lambda: state["ready"], "the flag")

    def waker():
        yield Delay(1_000)  # well past several deadlines
        state["ready"] = True
        device.engine.fire(sig)

    dog.arm()
    device.engine.spawn(waiter(), "waiter")
    device.engine.spawn(waker(), "waker")
    device.run()
    assert dog.fired is False


def test_disarm_cancels_cleanly_without_inflating_time():
    device = Device()
    dog = BarrierWatchdog(device, deadline_ns=1_000_000, strategy_name="t")

    def quick():
        yield Delay(10)
        dog.disarm()

    dog.arm()
    device.engine.spawn(quick(), "quick")
    assert device.run() == 10  # the dog's pending wakeup adds nothing


def test_fired_watchdog_kills_watched_kernel():
    from repro.faults import FaultPlan, FaultSpec
    from repro.errors import BarrierTimeoutError
    from repro.harness.runner import run
    from repro.sanitize.sanitizer import SkewedMicrobench

    plan = FaultPlan([FaultSpec("hang", block=1, round=0)])
    with pytest.raises(BarrierTimeoutError):
        run(
            SkewedMicrobench(rounds=2, num_blocks_hint=4),
            "gpu-lockfree",
            4,
            faults=plan,
            keep_device=True,
            barrier_deadline_ns=50_000,
        )
