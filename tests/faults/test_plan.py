"""Tests for FaultPlan generation, determinism and consumption."""

import pytest

from repro.errors import FaultError
from repro.faults import (
    FAULT_KINDS,
    PERSISTENT_KINDS,
    TRANSIENT_KINDS,
    FaultPlan,
    FaultSpec,
    fault_plans,
)


def test_kind_partition_is_total():
    assert PERSISTENT_KINDS | TRANSIENT_KINDS == frozenset(FAULT_KINDS)
    assert not PERSISTENT_KINDS & TRANSIENT_KINDS


def test_unknown_kind_rejected():
    with pytest.raises(FaultError, match="unknown fault kind"):
        FaultSpec("cosmic-ray")


def test_invalid_spec_fields_rejected():
    with pytest.raises(FaultError):
        FaultSpec("straggler", block=0, factor=0.5)
    with pytest.raises(FaultError):
        FaultSpec("spurious-wakeup", block=0, count=0)
    with pytest.raises(FaultError):
        FaultSpec("driver-kill", at_ns=-1)


def test_generate_is_deterministic():
    a = FaultPlan.generate(1234, num_blocks=8, rounds=4)
    b = FaultPlan.generate(1234, num_blocks=8, rounds=4)
    assert a.descriptions == b.descriptions
    assert a.seed == b.seed == 1234


def test_generate_respects_bounds():
    for seed in range(50):
        plan = FaultPlan.generate(seed, num_blocks=6, rounds=3, max_faults=4)
        assert 1 <= len(plan) <= 4
        for spec in plan.specs:
            assert spec.kind in FAULT_KINDS
            if spec.block is not None:
                assert 0 <= spec.block < 6
            if spec.kind == "hang":
                assert 0 <= spec.round < 3


def test_generate_kind_restriction():
    for seed in range(20):
        plan = FaultPlan.generate(
            seed, num_blocks=4, rounds=2, kinds=["straggler"]
        )
        assert all(s.kind == "straggler" for s in plan.specs)


def test_transient_fault_consumed_once():
    plan = FaultPlan([FaultSpec("atomic-drop", block=2)])
    assert plan.drop_atomic(2) is True
    assert plan.drop_atomic(2) is False  # consumed
    assert plan.drop_atomic(1) is False  # wrong block never fires
    assert [f.kind for f in plan.fired] == ["atomic-drop"]


def test_persistent_hang_refires_every_attempt():
    plan = FaultPlan([FaultSpec("hang", block=1, round=0)])
    assert plan.should_hang(1, 0) is True
    plan.next_attempt()
    assert plan.should_hang(1, 0) is True
    # recorded once per attempt, not once per poll
    assert plan.should_hang(1, 0) is True
    assert [(f.kind, f.attempt) for f in plan.fired] == [
        ("hang", 1),
        ("hang", 2),
    ]


def test_straggler_scales_and_records_once_per_attempt():
    plan = FaultPlan([FaultSpec("straggler", block=0, factor=3.0)])
    assert plan.scale_compute(0, 100.0) == 300.0
    assert plan.scale_compute(0, 100.0) == 300.0
    assert plan.scale_compute(1, 100.0) == 100.0
    assert len(plan.fired) == 1
    assert plan.persistent


def test_driver_kill_armed_once():
    plan = FaultPlan([FaultSpec("driver-kill", at_ns=777)])
    assert plan.take_driver_kill() == 777
    assert plan.take_driver_kill() is None  # consumed at arming
    assert plan.fired == []  # not fired until the killer reports it
    plan.note_driver_kill_fired()
    assert [f.kind for f in plan.fired] == ["driver-kill"]


def test_spurious_polls_returned_once():
    plan = FaultPlan([FaultSpec("spurious-wakeup", block=3, count=5)])
    assert plan.spurious_polls(3) == 5
    assert plan.spurious_polls(3) == 0


def test_corrupt_store_zeroes_scalar_once():
    plan = FaultPlan([FaultSpec("mem-corrupt", block=0)])
    assert plan.corrupt_store(0, 7.5) == 0
    assert plan.corrupt_store(0, 7.5) == 7.5  # consumed


def test_corrupt_store_zeroes_arrays():
    import numpy as np

    plan = FaultPlan([FaultSpec("mem-corrupt", block=0)])
    out = plan.corrupt_store(0, np.array([1.0, 2.0]))
    assert np.array_equal(out, np.zeros(2))


def test_fault_plans_prefix_stable():
    short = [p.descriptions for p in fault_plans(99, 5, num_blocks=8, rounds=4)]
    long = [p.descriptions for p in fault_plans(99, 10, num_blocks=8, rounds=4)]
    assert long[:5] == short
