"""Property-based end-to-end checks of all six paper strategies.

Hypothesis drives random (grid size, round count, jitter seed)
configurations through the full harness — :func:`repro.harness.run`
with the real micro-benchmark workload — and every strategy of the
paper's Table/Fig. set must:

* produce results matching the NumPy reference (``verified``);
* keep the race monitor clean (no round executed early);
* leave a trace in which no block's round ``i+1`` compute span starts
  before every block's round ``i`` span ended
  (:func:`repro.sanitize.round_ordering_violations`);
* (device barriers) produce zero sanitizer barrier findings — no
  divergence, no premature release — under instrumented execution.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import MeanMicrobench
from repro.harness.runner import run
from repro.sanitize import SanitizerProbe, barrier_findings, race_findings
from repro.sanitize.analysis import round_ordering_violations

#: the six strategies the paper evaluates (Fig. 11 / §4–5).
PAPER_STRATEGIES = [
    "cpu-explicit",
    "cpu-implicit",
    "gpu-simple",
    "gpu-tree-2",
    "gpu-tree-3",
    "gpu-lockfree",
]

DEVICE_STRATEGIES = [s for s in PAPER_STRATEGIES if s.startswith("gpu-")]


def _micro(rounds: int, num_blocks: int) -> MeanMicrobench:
    return MeanMicrobench(
        rounds=rounds, num_blocks_hint=num_blocks, threads_per_block=64
    )


@settings(max_examples=25, deadline=None)
@given(
    strategy=st.sampled_from(PAPER_STRATEGIES),
    num_blocks=st.integers(1, 30),
    rounds=st.integers(1, 5),
    jitter_seed=st.integers(0, 2**32 - 1),
)
def test_results_match_reference_under_random_configs(
    strategy, num_blocks, rounds, jitter_seed
):
    result = run(
        _micro(rounds, num_blocks),
        strategy,
        num_blocks,
        threads_per_block=64,
        keep_device=True,
        jitter_pct=20.0,
        jitter_seed=jitter_seed,
    )
    assert result.verified is True
    assert result.violations == 0
    assert round_ordering_violations(result.device.trace) == []


@settings(max_examples=25, deadline=None)
@given(
    strategy=st.sampled_from(DEVICE_STRATEGIES),
    num_blocks=st.integers(2, 30),
    rounds=st.integers(1, 5),
    jitter_seed=st.integers(0, 2**32 - 1),
)
def test_device_barriers_produce_no_sanitizer_findings(
    strategy, num_blocks, rounds, jitter_seed
):
    probe = SanitizerProbe()
    result = run(
        _micro(rounds, num_blocks),
        strategy,
        num_blocks,
        threads_per_block=64,
        jitter_pct=20.0,
        jitter_seed=jitter_seed,
        probe=probe,
    )
    assert result.verified is True
    assert barrier_findings(probe, num_blocks) == []
    assert race_findings(probe) == []
    # Every block entered every round exactly once.
    assert probe.entered_rounds() == {
        b: list(range(rounds)) for b in range(num_blocks)
    }
