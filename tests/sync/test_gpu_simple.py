"""Tests for GPU simple synchronization (paper §5.1)."""

import pytest

from repro.errors import SyncProtocolError
from repro.model.barrier_costs import simple_cost
from repro.sync import GpuSimpleSync

from tests.sync.conftest import assert_barrier_invariant, run_barrier_kernel


def test_barrier_invariant_simultaneous_arrival():
    strat = GpuSimpleSync()
    _total, events, _dev = run_barrier_kernel(strat, num_blocks=8, rounds=5)
    assert_barrier_invariant(events, 8, 5)


def test_barrier_invariant_staggered_arrival():
    strat = GpuSimpleSync()
    _total, events, _dev = run_barrier_kernel(
        strat, num_blocks=12, rounds=4, compute_ns=700
    )
    assert_barrier_invariant(events, 12, 4)


def test_cost_matches_eq6_exactly():
    """Measured per-round barrier time equals N·t_a + t_c."""
    for n in (1, 4, 16, 30):
        strat = GpuSimpleSync()
        rounds = 3
        total, _events, dev = run_barrier_kernel(strat, num_blocks=n, rounds=rounds)
        t = dev.config.timings
        overhead = t.host_launch_ns + t.kernel_setup_ns + t.kernel_teardown_ns
        per_round = (total - overhead) / rounds
        assert per_round == simple_cost(n, t)


def test_goal_accumulates_across_rounds():
    strat = GpuSimpleSync()
    _total, _events, dev = run_barrier_kernel(strat, num_blocks=5, rounds=4)
    mutex = dev.memory.get(f"g_mutex#{strat._uid}")
    assert mutex.data[0] == 5 * 4  # never reset


def test_atomic_count_is_blocks_times_rounds():
    strat = GpuSimpleSync()
    _total, _events, dev = run_barrier_kernel(strat, num_blocks=6, rounds=7)
    assert dev.atomics.ops == 6 * 7


def test_single_block_grid():
    strat = GpuSimpleSync()
    total, events, _dev = run_barrier_kernel(strat, num_blocks=1, rounds=3)
    assert_barrier_invariant(events, 1, 3)
    assert total > 0


def test_barrier_before_prepare_rejected():
    strat = GpuSimpleSync()
    with pytest.raises(SyncProtocolError, match="prepare"):
        next(strat.barrier(None, 0))


def test_block_count_mismatch_rejected(device):
    strat = GpuSimpleSync()
    strat.prepare(device, 4)

    class FakeCtx:
        num_blocks = 9

    with pytest.raises(SyncProtocolError, match="prepared for 4"):
        next(strat.barrier(FakeCtx(), 0))


class TestResetVariantAblation:
    def test_reset_variant_is_correct(self):
        strat = GpuSimpleSync(reset_mutex=True)
        _total, events, dev = run_barrier_kernel(
            strat, num_blocks=8, rounds=5, compute_ns=300
        )
        assert_barrier_invariant(events, 8, 5)
        mutex = dev.memory.get(f"g_mutex#{strat._uid}")
        assert mutex.data[0] == 0  # reset after every round

    def test_reset_variant_is_slower(self):
        """§5.1: accumulating goalVal 'saves the number of instructions'."""
        n, rounds = 16, 5
        fast, _e, _d = run_barrier_kernel(GpuSimpleSync(), n, rounds)
        slow, _e, _d = run_barrier_kernel(GpuSimpleSync(reset_mutex=True), n, rounds)
        assert slow > fast

    def test_reset_variant_name(self):
        assert GpuSimpleSync(reset_mutex=True).name == "gpu-simple-reset"
