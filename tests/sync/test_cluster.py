"""Tests for the hierarchical tree-over-clusters barrier."""

import pytest

from repro.algorithms import MeanMicrobench
from repro.errors import SyncProtocolError
from repro.gpu.device import Device
from repro.gpu.presets import get_preset
from repro.harness import run
from repro.sync import GpuClusterTreeSync, get_strategy, strategy_names


def _micro(blocks, rounds=4, threads=64):
    return MeanMicrobench(
        rounds=rounds, num_blocks_hint=blocks, threads_per_block=threads
    )


def test_registered_under_its_name():
    assert "gpu-cluster-tree" in strategy_names()
    strategy = get_strategy("gpu-cluster-tree")
    assert isinstance(strategy, GpuClusterTreeSync)
    assert strategy.mode == "device"
    assert strategy.fallback_strategy() == "cpu-implicit"


def test_barrier_requires_prepare():
    strategy = GpuClusterTreeSync()
    device = Device(get_preset("riscv_cluster_1024"))
    with pytest.raises(SyncProtocolError, match="prepare"):
        from repro.gpu.context import BlockCtx

        ctx = BlockCtx(device, "k", 0, 4, 64)
        list(strategy.barrier(ctx, 0))


def test_prepare_homes_counters_in_their_domains():
    cfg = get_preset("riscv_cluster_1024")
    device = Device(cfg)
    strategy = GpuClusterTreeSync()
    strategy.prepare(device, 32)
    members = cfg.topology.members_by_domain(32)
    assert set(strategy._members) == set(members)
    for domain in members:
        assert strategy._arrive[domain].home_domain == domain
        assert strategy._release[domain].home_domain == domain
    assert strategy._global is not None
    assert strategy._global.home_domain == min(members)


@pytest.mark.parametrize("blocks", [4, 16, 64])
def test_synchronizes_correctly_on_the_cluster_preset(blocks):
    result = run(
        _micro(blocks),
        "gpu-cluster-tree",
        blocks,
        threads_per_block=64,
        config=get_preset("riscv_cluster_1024"),
    )
    assert result.verified is True
    assert result.violations == 0


def test_degenerates_correctly_on_a_single_domain_device():
    # One domain => one local group + a trivial global phase; still a
    # correct barrier on the paper's GTX 280.
    result = run(
        _micro(8), "gpu-cluster-tree", 8, threads_per_block=64
    )
    assert result.verified is True
    assert result.violations == 0


def test_runs_on_the_dual_gpu_preset():
    result = run(
        _micro(12),
        "gpu-cluster-tree",
        12,
        threads_per_block=64,
        config=get_preset("dual_gpu"),
    )
    assert result.verified is True
    assert result.violations == 0


def test_reuses_state_across_runs():
    # Two back-to-back prepares on the same device must reuse (and
    # re-zero) the allocations instead of exhausting device memory.
    cfg = get_preset("riscv_cluster_1024")
    device = Device(cfg)
    strategy = GpuClusterTreeSync()
    strategy.prepare(device, 32)
    before = device.memory.used_bytes
    strategy.prepare(device, 32)
    assert device.memory.used_bytes == before


def test_only_representatives_cross_the_interconnect():
    # The whole point of the hierarchy: the global counter sees exactly
    # one arrival per occupied domain per round, not one per block.
    cfg = get_preset("riscv_cluster_1024")
    rounds, blocks = 3, 64
    result = run(
        _micro(blocks, rounds=rounds),
        "gpu-cluster-tree",
        blocks,
        threads_per_block=64,
        config=cfg,
        keep_device=True,
    )
    device = result.device
    num_domains = cfg.topology.num_domains
    globals_ = [a for a in device.memory if a.name.startswith("cluster_global")]
    assert len(globals_) == 1
    assert int(globals_[0].data[0]) == rounds * num_domains
