"""Tests for GPU lock-free synchronization (paper §5.3)."""

import pytest

from repro.errors import SyncProtocolError
from repro.model.barrier_costs import lockfree_cost
from repro.sync import GpuLockFreeSync

from tests.sync.conftest import assert_barrier_invariant, run_barrier_kernel


@pytest.mark.parametrize("num_blocks", [1, 2, 3, 8, 16, 30])
def test_barrier_invariant(num_blocks):
    strat = GpuLockFreeSync()
    _total, events, _dev = run_barrier_kernel(strat, num_blocks, rounds=4)
    assert_barrier_invariant(events, num_blocks, 4)


def test_barrier_invariant_staggered():
    strat = GpuLockFreeSync()
    _total, events, _dev = run_barrier_kernel(
        strat, num_blocks=10, rounds=5, compute_ns=600
    )
    assert_barrier_invariant(events, 10, 5)


def test_uses_no_atomics_at_all():
    """The defining property: zero atomic operations (paper §5.3)."""
    strat = GpuLockFreeSync()
    _t, _e, dev = run_barrier_kernel(strat, num_blocks=16, rounds=10)
    assert dev.atomics.ops == 0


def test_cost_matches_eq9_and_is_constant():
    per_round_costs = set()
    for n in (2, 8, 16, 30):
        strat = GpuLockFreeSync()
        rounds = 4
        total, _e, dev = run_barrier_kernel(strat, n, rounds)
        t = dev.config.timings
        overhead = t.host_launch_ns + t.kernel_setup_ns + t.kernel_teardown_ns
        per_round = (total - overhead) / rounds
        assert per_round == lockfree_cost(n, t)
        per_round_costs.add(per_round)
    assert len(per_round_costs) == 1  # independent of N


def test_goal_accumulates_in_both_arrays():
    strat = GpuLockFreeSync()
    _t, _e, dev = run_barrier_kernel(strat, num_blocks=6, rounds=3)
    arr_in = dev.memory.get(f"Arrayin#{strat._uid}")
    arr_out = dev.memory.get(f"Arrayout#{strat._uid}")
    assert list(arr_in.data) == [3] * 6
    assert list(arr_out.data) == [3] * 6


def test_checker_is_block_1_per_paper():
    strat = GpuLockFreeSync()
    strat._num_blocks = 8
    assert strat.checker_block == 1
    strat._num_blocks = 1
    assert strat.checker_block == 0


def test_requires_enough_threads_for_parallel_check(device):
    """Fig. 9: thread i of the checking block watches Arrayin[i]."""
    strat = GpuLockFreeSync()
    strat.prepare(device, 8)

    class FakeCtx:
        num_blocks = 8
        block_threads = 4  # fewer threads than blocks

    with pytest.raises(SyncProtocolError, match="threads"):
        next(strat.barrier(FakeCtx(), 0))


def test_barrier_before_prepare_rejected():
    with pytest.raises(SyncProtocolError, match="prepare"):
        next(GpuLockFreeSync().barrier(None, 0))


class TestSerialGatherAblation:
    def test_serial_variant_is_correct(self):
        strat = GpuLockFreeSync(serial_gather=True)
        _total, events, dev = run_barrier_kernel(strat, num_blocks=8, rounds=3)
        assert_barrier_invariant(events, 8, 3)
        assert dev.atomics.ops == 0

    def test_serial_variant_cost_grows_with_blocks(self):
        """§5.3: the N-thread parallel check 'saves considerable
        synchronization overhead' vs a serial scan."""

        def per_round(strategy, n):
            total, _e, dev = run_barrier_kernel(strategy, n, rounds=2)
            t = dev.config.timings
            overhead = t.host_launch_ns + t.kernel_setup_ns + t.kernel_teardown_ns
            return (total - overhead) / 2

        serial_8 = per_round(GpuLockFreeSync(serial_gather=True), 8)
        serial_24 = per_round(GpuLockFreeSync(serial_gather=True), 24)
        parallel_24 = per_round(GpuLockFreeSync(), 24)
        assert serial_24 > serial_8  # grows with N
        assert serial_24 > parallel_24  # and loses to the paper's design

    def test_serial_variant_name(self):
        assert GpuLockFreeSync(serial_gather=True).name == "gpu-lockfree-serial"
