"""Tests for the strategy interface and registry."""

import pytest

from repro.errors import ConfigError, OccupancyError
from repro.gpu.presets import get_preset
from repro.sync import (
    CpuImplicitSync,
    GpuLockFreeSync,
    GpuSimpleSync,
    get_strategy,
    strategy_names,
)


def test_registry_contains_all_paper_strategies():
    names = strategy_names()
    for expected in (
        "cpu-explicit",
        "cpu-implicit",
        "gpu-simple",
        "gpu-tree-2",
        "gpu-tree-3",
        "gpu-lockfree",
        "null",
    ):
        assert expected in names


def test_get_strategy_returns_fresh_instances():
    a, b = get_strategy("gpu-simple"), get_strategy("gpu-simple")
    assert a is not b
    assert isinstance(a, GpuSimpleSync)


def test_unknown_strategy_rejected():
    with pytest.raises(ConfigError, match="unknown strategy"):
        get_strategy("gpu-magic")


def test_device_strategies_claim_full_shared_memory():
    cfg = get_preset("gtx280")
    assert GpuLockFreeSync().shared_mem_request(cfg) == cfg.shared_mem_per_sm
    assert CpuImplicitSync().shared_mem_request(cfg) == 0


def test_device_strategy_grid_limit_is_sm_count():
    cfg = get_preset("gtx280")
    strat = GpuSimpleSync()
    assert strat.max_blocks(cfg) == cfg.num_sms
    strat.validate_grid(cfg, cfg.num_sms)  # ok
    with pytest.raises(OccupancyError, match="deadlock"):
        strat.validate_grid(cfg, cfg.num_sms + 1)


def test_host_strategy_allows_huge_grids():
    cfg = get_preset("gtx280")
    CpuImplicitSync().validate_grid(cfg, 10_000)


def test_grid_must_be_positive():
    with pytest.raises(ConfigError):
        GpuSimpleSync().validate_grid(get_preset("gtx280"), 0)


def test_host_strategy_has_no_device_hooks():
    strat = CpuImplicitSync()
    with pytest.raises(NotImplementedError):
        strat.prepare(None, 4)
    with pytest.raises(NotImplementedError):
        strat.barrier(None, 0)


def test_describe_mentions_mode():
    assert "device" in GpuSimpleSync().describe()
    assert "host" in CpuImplicitSync().describe()
