"""Strategies must be re-preparable on the same device (sweep reuse)."""

import pytest

from repro.algorithms import MeanMicrobench
from repro.gpu.device import Device
from repro.gpu.host import Host
from repro.gpu.kernel import KernelSpec
from repro.sync import get_strategy

REPREPARABLE = [
    "gpu-simple",
    "gpu-tree-2",
    "gpu-tree-3",
    "gpu-lockfree",
    "gpu-sense-reversal",
    "gpu-dissemination",
]


@pytest.mark.parametrize("name", REPREPARABLE)
def test_prepare_twice_on_one_device(name):
    strategy = get_strategy(name)
    device = Device()
    strategy.prepare(device, 4)
    strategy.prepare(device, 8)  # must not raise (reused, reset state)


@pytest.mark.parametrize("name", ["gpu-simple", "gpu-lockfree"])
def test_back_to_back_kernels_with_reprepared_barrier(name):
    """Two barrier kernels on one device, re-preparing in between —
    the second run's correctness proves the state reset."""
    device = Device()
    host = Host(device)
    micro = MeanMicrobench(rounds=3, num_blocks_hint=6, threads_per_block=32)
    strategy = get_strategy(name)

    for launch_idx in range(2):
        micro.reset()
        strategy.prepare(device, 6)

        def program(ctx):
            for r in range(3):
                yield from ctx.compute(
                    micro.round_cost(r, ctx.block_id, 6),
                    micro.round_work(r, ctx.block_id, 6),
                )
                yield from strategy.barrier(ctx, r)

        spec = KernelSpec(
            f"k{launch_idx}", program, grid_blocks=6, block_threads=32,
            shared_mem_per_block=strategy.shared_mem_request(device.config),
        )

        def host_program():
            yield from host.launch(spec)
            yield from host.synchronize()

        device.engine.spawn(host_program(), "host")
        device.run()
        micro.verify()


def test_reuse_with_different_shape_reallocates():
    device = Device()
    strategy = get_strategy("gpu-lockfree")
    strategy.prepare(device, 4)
    first = device.memory.get(f"Arrayin#{strategy._uid}")
    assert first.shape == (4,)
    strategy.prepare(device, 9)
    second = device.memory.get(f"Arrayin#{strategy._uid}")
    assert second.shape == (9,)
