"""Shared fixtures for synchronization-strategy tests."""

from typing import List, Tuple

import pytest

from repro.gpu.device import Device
from repro.gpu.host import Host
from repro.gpu.kernel import KernelSpec
from repro.sync.base import SyncStrategy


def run_barrier_kernel(
    strategy: SyncStrategy,
    num_blocks: int,
    rounds: int,
    compute_ns: int = 0,
    threads: int = 64,
) -> Tuple[int, List[Tuple[int, int, int]], Device]:
    """Run a kernel that is nothing but rounds of (compute, barrier).

    Returns ``(total_ns, events, device)`` where ``events`` records
    ``(round, block, time)`` at each block's barrier *exit* — enough to
    assert the fundamental barrier invariant.
    """
    device = Device()
    host = Host(device)
    strategy.prepare(device, num_blocks)
    events: List[Tuple[int, int, int]] = []

    def program(ctx):
        for r in range(rounds):
            if compute_ns:
                # Stagger computation by block id so blocks arrive at the
                # barrier at different times — a stronger test than
                # simultaneous arrival.
                yield from ctx.compute(compute_ns * (1 + ctx.block_id % 3))
            yield from strategy.barrier(ctx, r)
            events.append((r, ctx.block_id, ctx.now))

    spec = KernelSpec(
        name=f"bar:{strategy.name}",
        program=program,
        grid_blocks=num_blocks,
        block_threads=threads,
        shared_mem_per_block=strategy.shared_mem_request(device.config),
    )

    def host_program():
        yield from host.launch(spec)
        yield from host.synchronize()

    device.engine.spawn(host_program(), "host")
    total = device.run()
    return total, events, device


def assert_barrier_invariant(events, num_blocks: int, rounds: int) -> None:
    """No block exits barrier ``r`` before every block *entered* it.

    With exit timestamps this is checkable as: the earliest exit of round
    ``r`` must not precede the latest exit of round ``r-1`` minus the
    release latency — we use the stronger, simpler form that every round-r
    exit happens at or after every round-(r-1) exit, which holds for all
    our barriers because release is collective.
    """
    by_round = {}
    for r, block, t in events:
        by_round.setdefault(r, []).append(t)
    for r in range(rounds):
        assert len(by_round[r]) == num_blocks, f"round {r} missing exits"
    for r in range(1, rounds):
        assert min(by_round[r]) >= max(by_round[r - 1]), (
            f"round {r} exit at {min(by_round[r])} precedes round {r-1} "
            f"exit at {max(by_round[r - 1])}"
        )


@pytest.fixture
def device():
    return Device()
