"""Tests for GPU tree-based synchronization (paper §5.2)."""

import pytest

from repro.errors import SyncProtocolError
from repro.model.barrier_costs import tree_cost, tree_level_plan
from repro.sync import GpuTreeSync

from tests.sync.conftest import assert_barrier_invariant, run_barrier_kernel


@pytest.mark.parametrize("levels", [2, 3])
@pytest.mark.parametrize("num_blocks", [1, 2, 9, 11, 16, 25, 30])
def test_barrier_invariant(levels, num_blocks):
    strat = GpuTreeSync(levels=levels)
    _total, events, _dev = run_barrier_kernel(strat, num_blocks, rounds=3)
    assert_barrier_invariant(events, num_blocks, 3)


@pytest.mark.parametrize("levels", [2, 3])
def test_barrier_invariant_staggered(levels):
    strat = GpuTreeSync(levels=levels)
    _total, events, _dev = run_barrier_kernel(
        strat, num_blocks=13, rounds=4, compute_ns=450
    )
    assert_barrier_invariant(events, 13, 4)


def test_two_level_cost_matches_eq7_balanced():
    """For balanced partitions measurement equals the Eq. 7 prediction."""
    for n in (16, 25, 30):  # partitions with equal-arrival critical paths
        strat = GpuTreeSync(levels=2)
        rounds = 2
        total, _e, dev = run_barrier_kernel(strat, n, rounds)
        t = dev.config.timings
        overhead = t.host_launch_ns + t.kernel_setup_ns + t.kernel_teardown_ns
        per_round = (total - overhead) / rounds
        assert per_round == tree_cost(n, 2, t)


def test_unbalanced_tree_measures_at_most_model():
    """Eq. 7 assumes simultaneous arrival — an upper bound in practice."""
    for n in (11, 23, 29):
        for levels in (2, 3):
            strat = GpuTreeSync(levels=levels)
            rounds = 2
            total, _e, dev = run_barrier_kernel(strat, n, rounds)
            t = dev.config.timings
            overhead = t.host_launch_ns + t.kernel_setup_ns + t.kernel_teardown_ns
            per_round = (total - overhead) / rounds
            assert per_round <= tree_cost(n, levels, t)


def test_atomic_counts_follow_plan():
    """Atomics per round = Σ level participants (every participant adds once)."""
    n, levels, rounds = 14, 2, 3
    strat = GpuTreeSync(levels=levels)
    _t, _e, dev = run_barrier_kernel(strat, n, rounds)
    plan = tree_level_plan(n, levels)
    expected_per_round = sum(sum(sizes) for sizes in plan)
    assert dev.atomics.ops == expected_per_round * rounds


def test_mutex_arrays_sized_by_plan(device):
    strat = GpuTreeSync(levels=3)
    strat.prepare(device, 27)
    plan = tree_level_plan(27, 3)
    for level, sizes in enumerate(plan):
        mutex = device.memory.get(f"tree_mutex#{strat._uid}_L{level}")
        assert mutex.shape == (len(sizes),)


def test_deeper_trees_supported():
    strat = GpuTreeSync(levels=4)
    _total, events, _dev = run_barrier_kernel(strat, num_blocks=30, rounds=2)
    assert_barrier_invariant(events, 30, 2)


def test_invalid_levels_rejected():
    with pytest.raises(SyncProtocolError):
        GpuTreeSync(levels=1)


def test_barrier_before_prepare_rejected():
    with pytest.raises(SyncProtocolError, match="prepare"):
        next(GpuTreeSync().barrier(None, 0))


def test_name_includes_levels():
    assert GpuTreeSync(levels=2).name == "gpu-tree-2"
    assert GpuTreeSync(levels=3).name == "gpu-tree-3"
