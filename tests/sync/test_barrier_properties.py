"""Property-based barrier invariants through the full simulator.

Hypothesis drives random (strategy, grid size, round count, arrival
skew) configurations; every device barrier must uphold the fundamental
invariant — no block exits round r before every block entered it — and
finish in bounded time.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sync import get_strategy

from tests.sync.conftest import assert_barrier_invariant, run_barrier_kernel

DEVICE_BARRIERS = [
    "gpu-simple",
    "gpu-simple-reset",
    "gpu-tree-2",
    "gpu-tree-3",
    "gpu-lockfree",
    "gpu-lockfree-serial",
    "gpu-sense-reversal",
    "gpu-dissemination",
]


@settings(max_examples=40, deadline=None)
@given(
    strategy_name=st.sampled_from(DEVICE_BARRIERS),
    num_blocks=st.integers(1, 30),
    rounds=st.integers(1, 6),
    compute_ns=st.integers(0, 1500),
)
def test_invariant_under_random_configurations(
    strategy_name, num_blocks, rounds, compute_ns
):
    strategy = get_strategy(strategy_name)
    total, events, _dev = run_barrier_kernel(
        strategy, num_blocks, rounds, compute_ns=compute_ns
    )
    assert_barrier_invariant(events, num_blocks, rounds)
    assert total > 0


@settings(max_examples=20, deadline=None)
@given(
    num_blocks=st.integers(2, 30),
    rounds=st.integers(1, 5),
)
def test_lockfree_cost_constant_under_random_grids(num_blocks, rounds):
    """Eq. 9 as a property: per-round lock-free cost never varies with N."""
    strategy = get_strategy("gpu-lockfree")
    total, _events, dev = run_barrier_kernel(strategy, num_blocks, rounds)
    t = dev.config.timings
    overhead = t.host_launch_ns + t.kernel_setup_ns + t.kernel_teardown_ns
    assert (total - overhead) / rounds == 1600


@settings(max_examples=20, deadline=None)
@given(
    strategy_name=st.sampled_from(["gpu-simple", "gpu-tree-2", "gpu-lockfree"]),
    num_blocks=st.integers(1, 30),
)
def test_barrier_runs_are_deterministic(strategy_name, num_blocks):
    a, _e, _d = run_barrier_kernel(get_strategy(strategy_name), num_blocks, 3)
    b, _e, _d = run_barrier_kernel(get_strategy(strategy_name), num_blocks, 3)
    assert a == b
