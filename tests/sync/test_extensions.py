"""Tests for the extension barriers (sense-reversal, dissemination)."""

import pytest

from repro.errors import SyncProtocolError
from repro.model.barrier_costs import lockfree_cost, simple_cost
from repro.sync import GpuDisseminationSync, GpuSenseReversalSync, get_strategy
from repro.sync.extensions import dissemination_cost, sense_reversal_cost

from tests.sync.conftest import assert_barrier_invariant, run_barrier_kernel


def per_round(strategy, n, rounds=3, compute_ns=0):
    total, events, dev = run_barrier_kernel(
        strategy, n, rounds, compute_ns=compute_ns
    )
    t = dev.config.timings
    overhead = (
        t.host_launch_ns
        + t.kernel_setup_ns
        + t.kernel_teardown_ns
        + rounds * compute_ns * 0  # compute excluded by caller choice
    )
    return (total - overhead) / rounds, events, dev


class TestSenseReversal:
    @pytest.mark.parametrize("num_blocks", [1, 2, 7, 16, 30])
    def test_barrier_invariant(self, num_blocks):
        strat = GpuSenseReversalSync()
        _t, events, _d = run_barrier_kernel(strat, num_blocks, rounds=4)
        assert_barrier_invariant(events, num_blocks, 4)

    def test_barrier_invariant_staggered(self):
        strat = GpuSenseReversalSync()
        _t, events, _d = run_barrier_kernel(
            strat, num_blocks=9, rounds=4, compute_ns=350
        )
        assert_barrier_invariant(events, 9, 4)

    def test_cost_matches_model(self):
        """The model is a simultaneous-arrival upper bound: the last
        arriver skips the spin observation, so from round 1 on it enters
        the next atomic chain one spin-read early and shaves up to
        ``spin_read_ns`` off each subsequent round."""
        for n in (2, 8, 30):
            cost, _e, dev = per_round(GpuSenseReversalSync(), n)
            t = dev.config.timings
            model = sense_reversal_cost(n, t)
            assert model - t.spin_read_ns <= cost <= model

    def test_counter_resets_every_round(self):
        strat = GpuSenseReversalSync()
        _t, _e, dev = run_barrier_kernel(strat, num_blocks=6, rounds=3)
        assert dev.memory.get(f"sr_count#{strat._uid}").data[0] == 0
        assert dev.memory.get(f"sr_sense#{strat._uid}").data[0] == 3

    def test_costlier_than_accumulating_simple(self):
        """Quantifies the paper's §5.1 optimization: goal accumulation
        saves the reset + sense stores."""
        t = None
        for n in (4, 16, 30):
            cost, _e, dev = per_round(GpuSenseReversalSync(), n)
            assert cost > simple_cost(n, dev.config.timings)

    def test_before_prepare_rejected(self):
        with pytest.raises(SyncProtocolError, match="prepare"):
            next(GpuSenseReversalSync().barrier(None, 0))

    def test_registered(self):
        assert isinstance(
            get_strategy("gpu-sense-reversal"), GpuSenseReversalSync
        )


class TestDissemination:
    @pytest.mark.parametrize("num_blocks", [1, 2, 3, 8, 17, 30])
    def test_barrier_invariant(self, num_blocks):
        strat = GpuDisseminationSync()
        _t, events, _d = run_barrier_kernel(strat, num_blocks, rounds=4)
        assert_barrier_invariant(events, num_blocks, 4)

    def test_barrier_invariant_staggered(self):
        strat = GpuDisseminationSync()
        _t, events, _d = run_barrier_kernel(
            strat, num_blocks=11, rounds=5, compute_ns=500
        )
        assert_barrier_invariant(events, 11, 5)

    def test_no_atomics(self):
        strat = GpuDisseminationSync()
        _t, _e, dev = run_barrier_kernel(strat, num_blocks=16, rounds=5)
        assert dev.atomics.ops == 0

    def test_cost_matches_model_logarithmic(self):
        costs = {}
        for n in (2, 4, 16, 30):
            cost, _e, dev = per_round(GpuDisseminationSync(), n)
            assert cost == dissemination_cost(n, dev.config.timings)
            costs[n] = cost
        # Logarithmic growth: 16 and 30 blocks need 4 and 5 rounds.
        assert costs[2] < costs[4] < costs[16] < costs[30]

    def test_between_lockfree_and_simple_at_scale(self):
        """At 30 blocks: lock-free < dissemination < simple — the niche
        later grid-sync work explored."""
        n = 30
        dis, _e, dev = per_round(GpuDisseminationSync(), n)
        t = dev.config.timings
        assert lockfree_cost(n, t) < dis < simple_cost(n, t)

    def test_single_block_trivial(self):
        cost, _e, dev = per_round(GpuDisseminationSync(), 1)
        assert cost == dev.config.timings.syncthreads_ns

    def test_before_prepare_rejected(self):
        with pytest.raises(SyncProtocolError, match="prepare"):
            next(GpuDisseminationSync().barrier(None, 0))

    def test_registered(self):
        assert isinstance(
            get_strategy("gpu-dissemination"), GpuDisseminationSync
        )


class TestExtensionsEndToEnd:
    @pytest.mark.parametrize(
        "strategy", ["gpu-sense-reversal", "gpu-dissemination"]
    )
    def test_fft_correct(self, strategy):
        from repro.algorithms import FFT
        from repro.harness import run

        result = run(FFT(n=256), strategy, num_blocks=7, threads_per_block=64)
        assert result.verified is True
        assert result.violations == 0
