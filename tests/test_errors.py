"""Tests for the exception hierarchy."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in errors.__all__:
        cls = getattr(errors, name)
        if name == "ReproError":
            continue
        assert issubclass(cls, errors.ReproError), name


def test_deadlock_error_carries_blocked_list():
    exc = errors.DeadlockError([("b0", "spinning"), ("b1", "SM slot")])
    assert exc.blocked == [("b0", "spinning"), ("b1", "SM slot")]
    assert "b0: spinning" in str(exc)
    assert "2 blocked" in str(exc)


def test_occupancy_is_a_launch_error():
    assert issubclass(errors.OccupancyError, errors.LaunchError)


def test_deadlock_is_a_simulation_error():
    assert issubclass(errors.DeadlockError, errors.SimulationError)


def test_single_catch_at_api_boundary():
    """A caller can catch every library error with one except clause."""
    from repro.algorithms import FFT
    from repro.harness import run

    with pytest.raises(errors.ReproError):
        run(FFT(n=64), "no-such-strategy", 4)
    with pytest.raises(errors.ReproError):
        run(FFT(n=64), "gpu-simple", 31)
    with pytest.raises(errors.ReproError):
        FFT(n=37)
