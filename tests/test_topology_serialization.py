"""Topology serialization: round-trips and content-address stability.

The topology is part of a device config's identity, so it must survive
the plain-dict round-trip and the schema-3 envelope, and it must be part
of the content-addressed cache key / service job id: two runs that
differ only in topology are different experiments and may never collide.
"""

import json
from dataclasses import replace

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu.config import DeviceConfig
from repro.gpu.presets import get_preset, preset_names
from repro.gpu.topology import Topology
from repro.parallel.cache import cache_key
from repro.serialization import (
    device_config_from_dict,
    device_config_to_dict,
    dump_result,
    parse_result,
)
from repro.service.jobs import job_id_for


# -- dict and envelope round-trips ------------------------------------------


@pytest.mark.parametrize("name", preset_names())
def test_every_preset_round_trips_through_plain_dicts(name):
    cfg = get_preset(name)
    again = device_config_from_dict(device_config_to_dict(cfg))
    assert again == cfg
    assert again.topology == cfg.topology


def test_topology_dict_is_json_serializable():
    payload = device_config_to_dict(get_preset("dual_gpu"))
    text = json.dumps(payload)
    assert json.loads(text)["topology"]["crossing_ns"] == 1500


def test_pre_topology_dicts_still_load():
    # Dicts journaled before the topology field existed have no
    # "topology" key; they must rebuild as the paper's flat device.
    payload = device_config_to_dict(DeviceConfig())
    del payload["topology"]
    cfg = device_config_from_dict(payload)
    assert cfg == DeviceConfig()
    assert cfg.topology == Topology()


@pytest.mark.parametrize("name", preset_names())
def test_every_preset_round_trips_through_the_envelope(name):
    cfg = get_preset(name)
    text = dump_result("sweep", {"device": device_config_to_dict(cfg)})
    payload = parse_result(text, kind="sweep")
    assert device_config_from_dict(payload["device"]) == cfg


# -- content-addressed identity ---------------------------------------------


def topologies():
    """Every valid topology shape, as a hypothesis strategy."""
    flat = st.just(Topology())
    spread = st.builds(
        Topology,
        kind=st.sampled_from(["multi-device", "cluster"]),
        num_domains=st.sampled_from([2, 3, 5, 6, 10, 15, 30]),
        co_residency=st.sampled_from(["exclusive", "cooperative"]),
        crossing_ns=st.sampled_from([0, 100, 1500]),
    )
    cooperative_flat = st.just(Topology(co_residency="cooperative"))
    return st.one_of(flat, cooperative_flat, spread)


def _payload(topology):
    # The exact payload shape the sweep cells use: the device dict rides
    # inside the task payload (num_sms=30 divides evenly by every domain
    # count the strategy generates).
    cfg = replace(DeviceConfig(), topology=topology)
    return {
        "spec": {"name": "micro", "rounds": 5},
        "strategy": "gpu-simple",
        "num_blocks": 8,
        "device": device_config_to_dict(cfg),
    }


@given(a=topologies(), b=topologies())
def test_cache_key_and_job_id_change_iff_topology_changes(a, b):
    key_a = cache_key("run_total", _payload(a))
    key_b = cache_key("run_total", _payload(b))
    id_a = job_id_for(_payload(a))
    id_b = job_id_for(_payload(b))
    if a == b:
        assert key_a == key_b
        assert id_a == id_b
    else:
        assert key_a != key_b
        assert id_a != id_b


@given(topo=topologies())
def test_content_addresses_are_deterministic(topo):
    assert cache_key("run_total", _payload(topo)) == cache_key(
        "run_total", _payload(topo)
    )
    assert job_id_for(_payload(topo)) == job_id_for(_payload(topo))
