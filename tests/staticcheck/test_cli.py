"""The ``lint`` CLI verb: paths, formats, exit codes."""

import json

import pytest

from repro.harness.cli import main

BROKEN_SOURCE = """\
def kernel(ctx):
    snapshot = 0
    yield from ctx.spin_until(flags, lambda s=snapshot: s >= 1, "stale")
"""

WARNING_SOURCE = """\
class ResetSync(SyncStrategy):
    def barrier(self, ctx, round_idx):
        yield from ctx.atomic_add(self._count, 0, 1)
        yield from ctx.spin_until(
            self._count, lambda: self._count.data[0] >= 1, "in"
        )
        yield from ctx.gwrite(self._count, 0, 0)
"""


def test_lint_defaults_to_shipped_tree_and_exits_zero(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "CLEAN" in out
    assert "suppressed" in out


def test_lint_explicit_paths_text_format(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(BROKEN_SOURCE)
    assert main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "[SC003 error]" in out
    assert f"{bad}:3:" in out


def test_lint_json_format_uses_envelope(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(BROKEN_SOURCE)
    assert main(["lint", str(bad), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["kind"] == "lint-report"
    assert payload["findings"][0]["code"] == "SC003"


def test_lint_strict_promotes_warnings_to_failures(tmp_path, capsys):
    warn = tmp_path / "warn.py"
    warn.write_text(WARNING_SOURCE)
    assert main(["lint", str(warn)]) == 0  # SC005 is warning severity
    capsys.readouterr()
    assert main(["lint", str(warn), "--strict"]) == 1
    assert "[SC005 warning]" in capsys.readouterr().out


def test_lint_missing_path_exits_two(capsys):
    assert main(["lint", "/no/such/path"]) == 2
    assert "no such file" in capsys.readouterr().err


def test_lint_syntax_error_exits_two(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    assert main(["lint", str(bad)]) == 2
    assert "cannot lint" in capsys.readouterr().err


def test_lint_report_loads_via_store(tmp_path, capsys):
    from repro.harness.store import load_result
    from repro.staticcheck.report import LintReport

    bad = tmp_path / "bad.py"
    bad.write_text(BROKEN_SOURCE)
    main(["lint", str(bad), "--format", "json"])
    out_file = tmp_path / "lint.json"
    out_file.write_text(capsys.readouterr().out)
    loaded = load_result(out_file)
    assert isinstance(loaded, LintReport)
    assert loaded.codes() == ["SC003"]


def test_positional_paths_rejected_for_other_experiments(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["table1", "src/repro"])
    assert exc.value.code == 2
