"""The ``lint`` CLI verb: paths, formats, exit codes."""

import json

import pytest

from repro.harness.cli import main

BROKEN_SOURCE = """\
def kernel(ctx):
    snapshot = 0
    yield from ctx.spin_until(flags, lambda s=snapshot: s >= 1, "stale")
"""

WARNING_SOURCE = """\
class ResetSync(SyncStrategy):
    def barrier(self, ctx, round_idx):
        yield from ctx.atomic_add(self._count, 0, 1)
        yield from ctx.spin_until(
            self._count, lambda: self._count.data[0] >= 1, "in"
        )
        yield from ctx.gwrite(self._count, 0, 0)
"""


def test_lint_defaults_to_shipped_tree_and_exits_zero(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "CLEAN" in out
    assert "suppressed" in out


def test_lint_explicit_paths_text_format(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(BROKEN_SOURCE)
    assert main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "[SC003 error]" in out
    assert f"{bad}:3:" in out


def test_lint_json_format_uses_envelope(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(BROKEN_SOURCE)
    assert main(["lint", str(bad), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["kind"] == "lint-report"
    assert payload["findings"][0]["code"] == "SC003"


def test_lint_strict_promotes_warnings_to_failures(tmp_path, capsys):
    warn = tmp_path / "warn.py"
    warn.write_text(WARNING_SOURCE)
    assert main(["lint", str(warn)]) == 0  # SC005 is warning severity
    capsys.readouterr()
    assert main(["lint", str(warn), "--strict"]) == 1
    assert "[SC005 warning]" in capsys.readouterr().out


def test_lint_missing_path_exits_two(capsys):
    assert main(["lint", "/no/such/path"]) == 2
    assert "no such file" in capsys.readouterr().err


def test_lint_syntax_error_exits_two(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    assert main(["lint", str(bad)]) == 2
    assert "cannot lint" in capsys.readouterr().err


def test_lint_report_loads_via_store(tmp_path, capsys):
    from repro.harness.store import load_result
    from repro.staticcheck.report import LintReport

    bad = tmp_path / "bad.py"
    bad.write_text(BROKEN_SOURCE)
    main(["lint", str(bad), "--format", "json"])
    out_file = tmp_path / "lint.json"
    out_file.write_text(capsys.readouterr().out)
    loaded = load_result(out_file)
    assert isinstance(loaded, LintReport)
    assert loaded.codes() == ["SC003"]


def test_positional_paths_rejected_for_other_experiments(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["table1", "src/repro"])
    assert exc.value.code == 2


# -- lint --fix [--diff|--check] ----------------------------------------------

FIXABLE_SOURCE = '''\
"""A spin with no WaitSpec declaration (auto-fixable SC009)."""

from repro.sync.base import SyncStrategy


class NoSpecSync(SyncStrategy):
    def barrier(self, ctx, round_idx):
        goal = round_idx + 1
        yield from ctx.atomic_add(self._m, 0, 1)
        yield from ctx.spin_until(
            self._m, lambda: self._m.data[0] >= goal, "go"
        )
'''


def test_lint_fix_writes_repairs_in_place(tmp_path, capsys):
    target = tmp_path / "spin.py"
    target.write_text(FIXABLE_SOURCE)
    assert main(["lint", str(target), "--fix"]) == 0
    out = capsys.readouterr().out
    assert "fixed 1 finding(s) in 1 file(s)" in out
    assert "[SC009]" in out
    on_disk = target.read_text()
    assert "spec=WaitSpec(goal, lo=0)" in on_disk
    assert "from repro.simcore.effects import WaitSpec" in on_disk
    capsys.readouterr()
    # The repaired file now lints clean and re-fixing is a no-op.
    assert main(["lint", str(target), "--strict"]) == 0
    capsys.readouterr()
    assert main(["lint", str(target), "--fix", "--check"]) == 0


def test_lint_fix_diff_is_a_dry_run(tmp_path, capsys):
    target = tmp_path / "spin.py"
    target.write_text(FIXABLE_SOURCE)
    assert main(["lint", str(target), "--fix", "--diff"]) == 0
    out = capsys.readouterr().out
    assert f"--- a/{target}" in out
    assert "+from repro.simcore.effects import WaitSpec" in out
    assert target.read_text() == FIXABLE_SOURCE  # untouched


def test_lint_fix_check_gates_on_pending_repairs(tmp_path, capsys):
    target = tmp_path / "spin.py"
    target.write_text(FIXABLE_SOURCE)
    assert main(["lint", str(target), "--fix", "--check"]) == 1
    out = capsys.readouterr().out
    assert "would fix 1 finding(s)" in out
    assert target.read_text() == FIXABLE_SOURCE  # --check never writes


def test_lint_fix_json_uses_fix_report_envelope(tmp_path, capsys):
    target = tmp_path / "spin.py"
    target.write_text(FIXABLE_SOURCE)
    assert main(["lint", str(target), "--fix", "--check", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["kind"] == "fix-report"
    assert payload["schema"] == 3
    assert payload["files_changed"] == 1
    assert payload["fixes_applied"] == 1
    assert payload["written"] is False
    assert payload["results"][0]["applied"][0]["code"] == "SC009"


def test_lint_fix_check_clean_on_shipped_tree(capsys):
    """The dogfooded repo is fix-clean: the CI gate passes."""
    assert main(["lint", "--fix", "--check"]) == 0
    assert "would fix 0 finding(s)" in capsys.readouterr().out


def test_diff_and_check_require_fix():
    with pytest.raises(SystemExit) as exc:
        main(["lint", "--check"])
    assert exc.value.code == 2
    with pytest.raises(SystemExit) as exc:
        main(["lint", "--fix", "--diff", "--check"])
    assert exc.value.code == 2


def test_fix_rejected_outside_lint():
    with pytest.raises(SystemExit) as exc:
        main(["models", "--fix"])
    assert exc.value.code == 2
