"""Cross-validation: the linter vs. the sanitizer's seeded mutants.

The contract under test (ISSUE acceptance criteria): every dynamic bug
class the mutants exhibit is *also* flagged statically with the
registry-linked SC code, and every shipped clean strategy, algorithm
and example lints clean.
"""

import pytest

import repro.sanitize.mutants  # noqa: F401  (registers the broken-* mutants)
from repro.staticcheck.crossval import (
    MUTANT_EXPECTATIONS,
    crossval_all,
    crossval_mutant,
    expectation_links_ok,
    verify_expectations,
)


def test_expectations_cover_every_registered_mutant():
    from repro.sync.base import strategy_names

    registered = {n for n in strategy_names() if n.startswith("broken-")}
    assert registered == set(MUTANT_EXPECTATIONS)


@pytest.mark.parametrize("name", sorted(MUTANT_EXPECTATIONS))
def test_each_mutant_is_statically_flagged_with_expected_codes(name):
    report = crossval_mutant(name)
    assert set(report.codes()) == MUTANT_EXPECTATIONS[name].static


@pytest.mark.parametrize("name", sorted(MUTANT_EXPECTATIONS))
def test_static_and_dynamic_taxonomies_are_linked(name):
    assert expectation_links_ok(MUTANT_EXPECTATIONS[name])


def test_verify_expectations_reports_no_problems():
    assert verify_expectations() == []


def test_crossval_all_lints_every_mutant():
    assert set(crossval_all()) == set(MUTANT_EXPECTATIONS)


def test_clean_strategies_lint_clean():
    """Every non-mutant registered strategy produces zero findings."""
    from repro.staticcheck import lint_strategy
    from repro.sync.base import get_strategy, strategy_names

    for name in strategy_names():
        if name.startswith("broken-"):
            continue
        report = lint_strategy(get_strategy(name))
        assert report.clean, (
            f"{name}: {[f.render() for f in report.findings]}"
        )


def test_shipped_tree_lints_clean():
    """src/repro + examples: zero unsuppressed findings (the CI gate)."""
    from repro.staticcheck import lint_paths

    report = lint_paths(["src/repro", "examples"])
    assert report.clean, [f.render() for f in report.findings]
    # The deliberate sites (mutants, reset-variant, occupancy demo) are
    # annotated, not invisible: the suppression count proves the linter
    # still sees them.
    assert report.suppressed == 6


def test_mutant_detection_survives_noqa_annotations():
    """The mutants' noqa comments hide them from tree lint runs but not
    from cross-validation (respect_noqa=False)."""
    from repro.staticcheck import lint_paths

    tree = lint_paths(["src/repro/sanitize/mutants.py"])
    assert tree.clean and tree.suppressed == 3
    for name, exp in MUTANT_EXPECTATIONS.items():
        assert set(crossval_mutant(name).codes()) == exp.static
