"""Cross-validation: the linter vs. the sanitizer's seeded mutants.

The contract under test (ISSUE acceptance criteria): every dynamic bug
class the mutants exhibit is *also* flagged statically with the
registry-linked SC code, and every shipped clean strategy, algorithm
and example lints clean.
"""

import pytest

import repro.sanitize.mutants  # noqa: F401  (registers the broken-* mutants)
from repro.staticcheck.crossval import (
    MUTANT_EXPECTATIONS,
    crossval_all,
    crossval_mutant,
    expectation_links_ok,
    repair_mutant,
    repaired_findings,
    verify_expectations,
    verify_repairs,
)


def test_expectations_cover_every_registered_mutant():
    from repro.sync.base import strategy_names

    registered = {n for n in strategy_names() if n.startswith("broken-")}
    assert registered == set(MUTANT_EXPECTATIONS)


@pytest.mark.parametrize("name", sorted(MUTANT_EXPECTATIONS))
def test_each_mutant_is_statically_flagged_with_expected_codes(name):
    report = crossval_mutant(name)
    assert set(report.codes()) == MUTANT_EXPECTATIONS[name].static


@pytest.mark.parametrize("name", sorted(MUTANT_EXPECTATIONS))
def test_static_and_dynamic_taxonomies_are_linked(name):
    assert expectation_links_ok(MUTANT_EXPECTATIONS[name])


def test_verify_expectations_reports_no_problems():
    assert verify_expectations() == []


def test_crossval_all_lints_every_mutant():
    assert set(crossval_all()) == set(MUTANT_EXPECTATIONS)


def test_clean_strategies_lint_clean():
    """Every non-mutant registered strategy produces zero findings."""
    from repro.staticcheck import lint_strategy
    from repro.sync.base import get_strategy, strategy_names

    for name in strategy_names():
        if name.startswith("broken-"):
            continue
        report = lint_strategy(get_strategy(name))
        assert report.clean, (
            f"{name}: {[f.render() for f in report.findings]}"
        )


def test_shipped_tree_lints_clean():
    """src/repro + examples: zero unsuppressed findings (the CI gate)."""
    from repro.staticcheck import lint_paths

    report = lint_paths(["src/repro", "examples"])
    assert report.clean, [f.render() for f in report.findings]
    # The deliberate sites (mutants, reset-variant, occupancy demo) are
    # annotated, not invisible: the suppression count proves the linter
    # still sees them.
    assert report.suppressed == 6


def test_mutant_detection_survives_noqa_annotations():
    """The mutants' noqa comments hide them from tree lint runs but not
    from cross-validation (respect_noqa=False)."""
    from repro.staticcheck import lint_paths

    tree = lint_paths(["src/repro/sanitize/mutants.py"])
    assert tree.clean and tree.suppressed == 3
    for name, exp in MUTANT_EXPECTATIONS.items():
        assert set(crossval_mutant(name).codes()) == exp.static


# ---------------------------------------------------------------------------
# Repair cross-validation: the mutants must be fixable, not just findable
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(MUTANT_EXPECTATIONS))
def test_each_mutant_repairs_with_its_expected_codes(name):
    """The engine applies exactly the expected SC fixes, scoped to the
    mutant class, and the repaired class lints clean."""
    repair = repair_mutant(name)
    assert {a.code for a in repair.fix.applied} == MUTANT_EXPECTATIONS[
        name
    ].static
    assert repaired_findings(repair) == []


def test_repair_does_not_touch_neighbouring_mutants():
    """Class-scoped repair: fixing one mutant leaves the other seeded
    bugs in the same file detectable."""
    repair = repair_mutant("broken-simple-undercount")
    # The other two mutants' bugs survive in the repaired file source.
    from repro.staticcheck.engine import lint_source

    report = lint_source(repair.fix.fixed, "<x>", respect_noqa=False)
    codes_by_unit = {(f.unit.split(".")[0], f.code) for f in report.findings}
    assert ("BrokenLockFreeNoScatter", "SC008") in codes_by_unit
    assert ("BrokenSimpleSkipRound", "SC001") in codes_by_unit
    assert not any(
        unit == "BrokenSimpleUndercount" for unit, _ in codes_by_unit
    )


def test_repair_restores_the_strategy_registry():
    """Executing repaired module source re-registers strategies; the
    harness must snapshot and restore so mutants stay seeded."""
    from repro.sync.base import get_strategy, strategy_names

    before = strategy_names()
    broken_cls = type(get_strategy("broken-simple-skipround"))
    repair_mutant("broken-simple-skipround")
    assert strategy_names() == before
    assert type(get_strategy("broken-simple-skipround")) is broken_cls


def test_verify_repairs_closes_the_loop():
    """Every mutant repairs back to passing: lint-clean, sanitizer-clean
    (PR 1), and bit-identical under both engines (PR 6)."""
    assert verify_repairs(schedules=4) == []
