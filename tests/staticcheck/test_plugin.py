"""The --staticcheck pytest plugin, driven through pytester."""

import textwrap

import pytest

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

CONFTEST = textwrap.dedent(
    """
    import sys
    sys.path.insert(0, {src!r})
    pytest_plugins = ("repro.staticcheck.pytest_plugin",)
    """
)


def _conftest():
    from pathlib import Path

    import repro

    src = str(Path(repro.__file__).resolve().parent.parent)
    return CONFTEST.format(src=src)


def test_header_reports_mode(pytester):
    pytester.makeconftest(_conftest())
    pytester.makepyfile("def test_ok():\n    assert True\n")
    result = pytester.runpytest_subprocess()
    result.stdout.fnmatch_lines(["staticcheck: off"])
    result = pytester.runpytest_subprocess("--staticcheck", "--co")
    result.stdout.fnmatch_lines(["staticcheck: lint registered strategies"])


def test_staticcheck_passes_on_shipped_strategies(pytester):
    pytester.makeconftest(_conftest())
    pytester.makepyfile(
        """
        import repro.sync.extensions  # register the extension barriers

        def test_ok():
            assert True
        """
    )
    result = pytester.runpytest_subprocess("-q", "--staticcheck")
    result.assert_outcomes(passed=1)


def test_staticcheck_fails_session_on_buggy_registered_strategy(pytester):
    pytester.makeconftest(_conftest())
    pytester.makepyfile(
        test_buggy=(
            """
            from repro.sync.base import SyncStrategy, register_strategy

            class SkipSync(SyncStrategy):
                name = "test-skip"

                def prepare(self, device, num_blocks):
                    self._m = device.alloc("m", num_blocks)

                def barrier(self, ctx, round_idx):
                    if ctx.block_id == 0:
                        return
                    yield from ctx.atomic_add(self._m, 0, 1)
                    yield from ctx.spin_until(
                        self._m, lambda: self._m.data[0] >= 1, "go"
                    )

            register_strategy("test-skip", SkipSync)

            def test_never_reached():
                assert True
            """
        )
    )
    result = pytester.runpytest_subprocess("-q", "--staticcheck")
    assert result.ret != 0
    result.stderr.fnmatch_lines(["*--staticcheck: 1 finding(s)*"])
    result.stderr.fnmatch_lines(["*SC001*SkipSync*"])


def test_broken_mutants_are_exempt(pytester):
    pytester.makeconftest(_conftest())
    pytester.makepyfile(
        """
        import repro.sanitize.mutants  # registers broken-* strategies

        def test_ok():
            assert True
        """
    )
    result = pytester.runpytest_subprocess("-q", "--staticcheck")
    result.assert_outcomes(passed=1)


def test_fixtures_available(lint_source_report, lint_strategy_report):
    report = lint_source_report("def kernel(ctx):\n    yield from ctx.compute(1)\n")
    assert report.clean and report.units_checked == 1

    from repro.sync.base import get_strategy

    report = lint_strategy_report(get_strategy("gpu-lockfree"))
    assert report.clean
