"""LintReport: serialization round-trips and determinism properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.findings import STATIC_CODES
from repro.staticcheck.report import LintReport, StaticFinding

finding_st = st.builds(
    StaticFinding,
    code=st.sampled_from(sorted(STATIC_CODES)),
    message=st.text(
        alphabet=st.characters(codec="ascii", exclude_characters="\n"),
        min_size=1,
        max_size=40,
    ),
    file=st.sampled_from(["a.py", "b.py", "dir/c.py"]),
    line=st.integers(min_value=1, max_value=500),
    unit=st.sampled_from(["<module>", "Foo.barrier", "kernel"]),
)


def test_rejects_unknown_and_dynamic_codes():
    with pytest.raises(ValueError):
        StaticFinding(code="SC999", message="x", file="f.py", line=1)
    with pytest.raises(ValueError):
        StaticFinding(code="DYN001", message="x", file="f.py", line=1)


def test_render_carries_code_severity_and_paper_ref():
    finding = StaticFinding(
        code="SC002", message="grid too big", file="demo.py", line=7
    )
    line = finding.render()
    assert line.startswith("demo.py:7: [SC002 error]")
    assert "paper §5" in line and "in <module>" in line


def test_exit_codes():
    clean = LintReport(files=["a.py"])
    assert clean.exit_code() == 0 and clean.exit_code(strict=True) == 0
    warn = LintReport(
        files=["a.py"],
        findings=[
            StaticFinding(code="SC005", message="m", file="a.py", line=1)
        ],
    )
    assert warn.exit_code() == 0  # SC005 is warning severity
    assert warn.exit_code(strict=True) == 1
    err = LintReport(
        files=["a.py"],
        findings=[
            StaticFinding(code="SC001", message="m", file="a.py", line=1)
        ],
    )
    assert err.exit_code() == 1


@given(findings=st.lists(finding_st, max_size=8))
@settings(max_examples=50, deadline=None)
def test_json_round_trip_preserves_everything(findings):
    report = LintReport(
        files=["b.py", "a.py"],
        units_checked=3,
        findings=list(findings),
        suppressed=2,
    )
    back = LintReport.from_json(report.to_json())
    assert back.files == sorted({"a.py", "b.py"})
    assert back.units_checked == 3
    assert back.suppressed == 2
    assert sorted(f.sort_key for f in back.findings) == sorted(
        f.sort_key for f in findings
    )


@given(findings=st.lists(finding_st, max_size=8), seed=st.randoms())
@settings(max_examples=50, deadline=None)
def test_render_is_input_order_independent(findings, seed):
    shuffled = list(findings)
    seed.shuffle(shuffled)
    one = LintReport(files=["a.py"], findings=list(findings))
    two = LintReport(files=["a.py"], findings=shuffled)
    assert one.render() == two.render()
    assert one.to_json() == two.to_json()


def test_merge_accumulates_and_normalizes():
    first = LintReport(files=["b.py"], units_checked=1, suppressed=1)
    second = LintReport(
        files=["a.py"],
        units_checked=2,
        findings=[
            StaticFinding(code="SC003", message="m", file="a.py", line=4)
        ],
    )
    merged = first.merge(second)
    assert merged is first
    assert merged.files == ["a.py", "b.py"]
    assert merged.units_checked == 3
    assert merged.suppressed == 1
    assert merged.codes() == ["SC003"]


def test_linting_same_tree_twice_is_byte_identical():
    from repro.staticcheck import lint_paths

    one = lint_paths(["src/repro/sync"])
    two = lint_paths(["src/repro/sync"])
    assert one.render() == two.render()
    assert one.to_json() == two.to_json()


def test_lint_paths_order_independent():
    from repro.staticcheck import lint_paths

    forward = lint_paths(["src/repro/sync", "examples"])
    reverse = lint_paths(["examples", "src/repro/sync"])
    assert forward.to_json() == reverse.to_json()
