"""The CFG builder: shapes, reachability, and bypass queries."""

import ast

import pytest

from repro.staticcheck.cfg import ENTRY, EXIT, build_cfg


def cfg_of(source: str):
    func = ast.parse(source).body[0]
    return build_cfg(func)


def nodes_on_line(cfg, line):
    return [n.index for n in cfg.statement_nodes() if n.line == line]


def test_straight_line_chains_entry_to_exit():
    cfg = cfg_of("def f():\n a = 1\n b = 2\n return b\n")
    stmts = cfg.statement_nodes()
    assert [n.kind for n in stmts] == ["stmt", "stmt", "stmt"]
    assert cfg.nodes[ENTRY].succs == [stmts[0].index]
    assert EXIT in cfg.nodes[stmts[-1].index].succs
    assert EXIT in cfg.reachable(ENTRY)


def test_if_without_else_branches_and_rejoins():
    cfg = cfg_of("def f(x):\n if x:\n  a = 1\n b = 2\n")
    branch = next(n for n in cfg.statement_nodes() if n.kind == "branch")
    (then_idx,) = nodes_on_line(cfg, 3)
    (join_idx,) = nodes_on_line(cfg, 4)
    assert set(cfg.nodes[branch.index].succs) == {then_idx, join_idx}
    assert cfg.nodes[then_idx].succs == [join_idx]


def test_return_edges_to_exit_and_ends_flow():
    cfg = cfg_of("def f(x):\n if x:\n  return 1\n y = 2\n")
    (ret_idx,) = nodes_on_line(cfg, 3)
    assert cfg.nodes[ret_idx].succs == [EXIT]


def test_while_has_back_edge_and_zero_iteration_bypass():
    cfg = cfg_of("def f(x):\n while x:\n  x -= 1\n return x\n")
    head = next(n for n in cfg.statement_nodes() if n.kind == "branch")
    (body_idx,) = nodes_on_line(cfg, 3)
    assert head.index in cfg.nodes[body_idx].succs  # back edge
    (ret_idx,) = nodes_on_line(cfg, 4)
    assert ret_idx in cfg.nodes[head.index].succs  # zero-iteration exit


def test_break_exits_loop_continue_returns_to_head():
    cfg = cfg_of(
        "def f(xs):\n"
        " for x in xs:\n"
        "  if x:\n"
        "   break\n"
        "  continue\n"
        " return 0\n"
    )
    head = next(n for n in cfg.statement_nodes() if n.kind == "loop")
    (brk,) = nodes_on_line(cfg, 4)
    (cont,) = nodes_on_line(cfg, 5)
    (ret,) = nodes_on_line(cfg, 6)
    assert ret in cfg.nodes[brk].succs
    assert cfg.nodes[cont].succs == [head.index]


def test_reachable_respects_avoid_set():
    cfg = cfg_of("def f():\n a = 1\n b = 2\n c = 3\n")
    (a,) = nodes_on_line(cfg, 2)
    (b,) = nodes_on_line(cfg, 3)
    assert EXIT in cfg.reachable(a)
    assert EXIT not in cfg.reachable(a, avoid=[b])
    assert not cfg.exit_reachable_avoiding(a, [b])


def test_bypass_nodes_empty_when_every_path_passes():
    cfg = cfg_of("def f():\n a = 1\n barrier = 2\n b = 3\n")
    (barrier,) = nodes_on_line(cfg, 3)
    assert cfg.bypass_nodes([barrier]) == set()


def test_bypass_nodes_finds_the_skipping_branch():
    cfg = cfg_of(
        "def f(x):\n"
        " if x:\n"
        "  return 0\n"
        " barrier = 1\n"
        " return 1\n"
    )
    (barrier,) = nodes_on_line(cfg, 4)
    bypass = cfg.bypass_nodes([barrier])
    branch = next(n for n in cfg.statement_nodes() if n.kind == "branch")
    assert branch.index in bypass
    (early_ret,) = nodes_on_line(cfg, 3)
    assert early_ret in bypass


def test_try_handler_reachable_conservatively():
    cfg = cfg_of(
        "def f():\n"
        " try:\n"
        "  a = 1\n"
        " except ValueError:\n"
        "  b = 2\n"
        " return 0\n"
    )
    (handler_stmt,) = nodes_on_line(cfg, 5)
    assert handler_stmt in cfg.reachable(ENTRY)
    assert EXIT in cfg.reachable(handler_stmt)


def test_nested_function_is_one_opaque_node():
    cfg = cfg_of(
        "def f():\n"
        " def inner():\n"
        "  return 1\n"
        " return inner\n"
    )
    kinds = [n.kind for n in cfg.statement_nodes()]
    assert kinds == ["stmt", "stmt"]  # def + return, nothing from inside


def test_build_cfg_rejects_non_functions():
    with pytest.raises(TypeError):
        build_cfg(ast.parse("x = 1").body[0].value)
