"""One positive and one near-miss negative fixture per SC rule.

Every positive snippet is the *minimal* version of a bug the dynamic
sanitizer can only find by running schedules; every negative is the
closest legitimate idiom (usually one actually shipped in
``src/repro/sync``), so these tests pin both the detection and the
false-positive boundary of each rule.
"""

from repro.staticcheck import lint_source


def codes(source):
    return lint_source(source, "<fixture>").codes()


# -- SC001: barrier divergence ----------------------------------------------

SC001_POS = """
class SkipSync(SyncStrategy):
    def barrier(self, ctx, round_idx):
        if ctx.block_id == ctx.num_blocks - 1:
            return
        yield from ctx.atomic_add(self._m, 0, 1)
        yield from ctx.spin_until(
            self._m, lambda: self._m.data[0] >= 1, "go", spec=WaitSpec(1, lo=0)
        )
"""

# Near miss: same early return, but on round index — every block takes
# the same branch, so no divergence.
SC001_NEG = """
class RoundGateSync(SyncStrategy):
    def barrier(self, ctx, round_idx):
        if round_idx < 0:
            return
        yield from ctx.atomic_add(self._m, 0, 1)
        yield from ctx.spin_until(
            self._m, lambda: self._m.data[0] >= 1, "go", spec=WaitSpec(1, lo=0)
        )
"""

# Near miss: block-dependent *asymmetric work* that still reaches the
# closing barrier yields on every path (the Fig. 9 checker-block shape).
SC001_NEG_CHECKER = """
class CheckerSync(SyncStrategy):
    def barrier(self, ctx, round_idx):
        if ctx.block_id == 0:
            yield from ctx.gwrite(self._out, 0, 1)
        yield from ctx.spin_until(
            self._out, lambda: self._out.data[0] >= 1, "go", spec=WaitSpec(1, lo=0)
        )
        yield from ctx.gwrite(self._out, 0, 1)
"""


def test_sc001_flags_block_dependent_barrier_skip():
    assert codes(SC001_POS) == ["SC001"]


def test_sc001_ignores_uniform_early_return():
    assert codes(SC001_NEG) == []


def test_sc001_ignores_checker_asymmetry_that_still_synchronizes():
    assert codes(SC001_NEG_CHECKER) == []


# -- SC002: static occupancy violation ---------------------------------------

SC002_POS = """
BLOCKS = 64
def main():
    run(micro, "gpu-simple", num_blocks=BLOCKS)
"""

SC002_NEG_HOST = """
def main():
    run(micro, "cpu-implicit", num_blocks=64)
"""

SC002_NEG_FITS = """
def main():
    run(micro, "gpu-simple", num_blocks=30)
"""


def test_sc002_flags_device_grid_past_sm_count():
    assert codes(SC002_POS) == ["SC002"]


def test_sc002_ignores_host_strategies_and_fitting_grids():
    assert codes(SC002_NEG_HOST) == []
    assert codes(SC002_NEG_FITS) == []


# A grid legal on a cooperative-launch device but fatal on the paper's
# GTX 280: the verdict must follow the preset's co-residency policy, not
# a hard-coded 30.
SC002_COOPERATIVE = """
def main():
    run(micro, "gpu-simple", num_blocks=96)
"""


def test_sc002_limit_is_preset_policy_not_a_constant():
    from repro.staticcheck import lint_source, sm_limit_for_preset

    flagged = lint_source(
        SC002_COOPERATIVE,
        "<fixture>",
        sm_limit=sm_limit_for_preset("gtx280"),
    )
    assert flagged.codes() == ["SC002"]
    assert "co-residency limit" in flagged.findings[0].message

    clean = lint_source(
        SC002_COOPERATIVE,
        "<fixture>",
        sm_limit=sm_limit_for_preset("grid_sync"),
    )
    assert clean.codes() == []


def test_sm_limit_for_preset_resolves_through_the_topology():
    from repro.staticcheck import sm_limit_for_preset

    assert sm_limit_for_preset("gtx280") == 30  # exclusive: one per SM
    assert sm_limit_for_preset("fermi_class") == 15
    assert sm_limit_for_preset("grid_sync") == 80 * 32  # cooperative


# -- SC003: stale spin read --------------------------------------------------

SC003_POS = """
def kernel(ctx):
    snapshot = 0
    yield from ctx.spin_until(flags, lambda s=snapshot: s >= 1, "stale")
"""

SC003_NEG = """
def kernel(ctx):
    yield from ctx.spin_until(
        flags, lambda: flags.data[0] >= 1, "fresh", spec=WaitSpec(1, lo=0)
    )
"""

SC003_POS_WHILE = """
def kernel(ctx):
    done = False
    while not done:
        yield from ctx.compute(1)
"""

SC003_NEG_WHILE = """
def kernel(ctx):
    done = False
    while not done:
        done = ctx.gread_now(flags, 0) >= 1
        yield from ctx.compute(1)
"""


def test_sc003_flags_predicate_over_captured_snapshot():
    assert codes(SC003_POS) == ["SC003"]


def test_sc003_accepts_predicate_that_rereads_memory():
    assert codes(SC003_NEG) == []


def test_sc003_flags_wait_loop_with_loop_invariant_condition():
    assert codes(SC003_POS_WHILE) == ["SC003"]


def test_sc003_accepts_wait_loop_that_updates_its_condition():
    assert codes(SC003_NEG_WHILE) == []


# -- SC004: unguarded atomic arrival -----------------------------------------

SC004_POS = """
def kernel(ctx):
    for i in range(4):
        yield from ctx.atomic_add(mutex, 0, 1)
"""

# Near miss: the tree barrier's shape — the atomic target varies with
# the loop level, so each iteration arrives at a *different* barrier.
SC004_NEG = """
def kernel(ctx):
    for level in range(4):
        mutex = mutexes[level]
        yield from ctx.atomic_add(mutex, 0, 1)
"""


def test_sc004_flags_repeated_arrival_on_fixed_cell():
    assert codes(SC004_POS) == ["SC004"]


def test_sc004_accepts_per_level_atomics():
    assert codes(SC004_NEG) == []


# -- SC005: goalVal anti-patterns --------------------------------------------

SC005_POS_RESET = """
class ResetSync(SyncStrategy):
    def barrier(self, ctx, round_idx):
        yield from ctx.atomic_add(self._count, 0, 1)
        yield from ctx.spin_until(
            self._count, lambda: self._count.data[0] >= 1, "all in",
            spec=WaitSpec(1, lo=0),
        )
        yield from ctx.gwrite(self._count, 0, 0)
"""

# Near miss: a reset of a *different* array than the arrival counter
# (publishing a result is not the anti-pattern).
SC005_NEG_RESET = """
class PublishSync(SyncStrategy):
    def barrier(self, ctx, round_idx):
        yield from ctx.atomic_add(self._count, 0, 1)
        yield from ctx.spin_until(
            self._count, lambda: self._count.data[0] >= 1, "all in",
            spec=WaitSpec(1, lo=0),
        )
        yield from ctx.gwrite(self._result, 0, 0)
"""

SC005_POS_GOAL = """
class UnderCountSync(SyncStrategy):
    def barrier(self, ctx, round_idx):
        n = ctx.num_blocks
        goal = round_idx * n + 1
        yield from ctx.atomic_add(self._m, 0, 1)
        yield from ctx.spin_until(
            self._m, lambda: self._m.data[0] >= goal, "go", spec=WaitSpec(goal, lo=0)
        )
"""

SC005_NEG_GOAL = """
class AccumulateSync(SyncStrategy):
    def barrier(self, ctx, round_idx):
        n = ctx.num_blocks
        goal = (round_idx + 1) * n
        yield from ctx.atomic_add(self._m, 0, 1)
        yield from ctx.spin_until(
            self._m, lambda: self._m.data[0] >= goal, "go", spec=WaitSpec(goal, lo=0)
        )
"""


def test_sc005_flags_counter_reset():
    assert codes(SC005_POS_RESET) == ["SC005"]


def test_sc005_ignores_reset_of_non_counter_state():
    assert codes(SC005_NEG_RESET) == []


def test_sc005_flags_non_multiple_goal():
    assert codes(SC005_POS_GOAL) == ["SC005"]


def test_sc005_accepts_accumulating_goal():
    assert codes(SC005_NEG_GOAL) == []


# -- SC006: shared-memory race -----------------------------------------------

SC006_POS = """
def kernel(ctx):
    yield from ctx.swrite(buf, tid, 1)
    yield from ctx.sread(buf, tid + 1)
"""

SC006_NEG = """
def kernel(ctx):
    yield from ctx.swrite(buf, tid, 1)
    yield from ctx.syncthreads()
    yield from ctx.sread(buf, tid + 1)
"""

SC006_NEG_SAME_INDEX = """
def kernel(ctx):
    yield from ctx.swrite(buf, tid, 1)
    yield from ctx.sread(buf, tid)
"""


def test_sc006_flags_unsynchronized_cross_index_access():
    assert codes(SC006_POS) == ["SC006"]


def test_sc006_accepts_syncthreads_separation_and_private_cells():
    assert codes(SC006_NEG) == []
    assert codes(SC006_NEG_SAME_INDEX) == []


# -- SC007: under-sized flag array -------------------------------------------

SC007_POS = """
class FixedFlagsSync(SyncStrategy):
    def prepare(self, device, num_blocks):
        self._flags = device.alloc("flags", 8)

    def barrier(self, ctx, round_idx):
        yield from ctx.gwrite(self._flags, ctx.block_id, 1)
"""

SC007_NEG = """
class ScaledFlagsSync(SyncStrategy):
    def prepare(self, device, num_blocks):
        self._flags = device.alloc("flags", num_blocks)

    def barrier(self, ctx, round_idx):
        yield from ctx.gwrite(self._flags, ctx.block_id, 1)
"""

# Near miss: constant-sized array indexed by a *constant*, not by block
# identity (a single shared counter cell is legitimately size 1).
SC007_NEG_SCALAR = """
class CounterSync(SyncStrategy):
    def prepare(self, device, num_blocks):
        self._count = device.alloc("count", 1)

    def barrier(self, ctx, round_idx):
        yield from ctx.atomic_add(self._count, 0, 1)
"""


def test_sc007_flags_constant_sized_per_block_array():
    assert codes(SC007_POS) == ["SC007"]


def test_sc007_accepts_grid_scaled_and_scalar_allocations():
    assert codes(SC007_NEG) == []
    assert codes(SC007_NEG_SCALAR) == []


def test_sc007_tracks_num_blocks_through_locals():
    derived = SC007_NEG.replace(
        'device.alloc("flags", num_blocks)',
        'device.alloc("flags", size)',
    ).replace(
        "self._flags = ",
        "size = num_blocks * 2\n        self._flags = ",
    )
    assert codes(derived) == []


# -- SC008: unreleased synchronization path ----------------------------------

SC008_POS_EFFECT = """
def worker(unit, res):
    yield Acquire(res)
    if res.busy:
        return
    yield Release(res)
"""

SC008_NEG_EFFECT = """
def worker(unit, res):
    yield Acquire(res)
    try:
        yield Delay(10)
    finally:
        yield Release(res)
"""

SC008_POS_CLASS = """
class NoScatterSync(SyncStrategy):
    def barrier(self, ctx, round_idx):
        yield from ctx.gwrite(self._arr_in, ctx.block_id, 1)
        yield from ctx.spin_until(
            self._arr_out, lambda: self._arr_out.data[0] >= 1, "released",
            spec=WaitSpec(1, lo=0),
        )
"""

SC008_NEG_CLASS = """
class ScatterSync(SyncStrategy):
    def barrier(self, ctx, round_idx):
        yield from ctx.gwrite(self._arr_in, ctx.block_id, 1)
        yield from self._scatter(ctx)
        yield from ctx.spin_until(
            self._arr_out, lambda: self._arr_out.data[0] >= 1, "released",
            spec=WaitSpec(1, lo=0),
        )

    def _scatter(self, ctx):
        yield from ctx.gwrite(self._arr_out, ctx.block_id, 1)
"""


def test_sc008_flags_acquire_with_release_free_exit_path():
    assert codes(SC008_POS_EFFECT) == ["SC008"]


def test_sc008_accepts_release_on_every_path():
    assert codes(SC008_NEG_EFFECT) == []


def test_sc008_flags_spin_on_never_written_array():
    assert codes(SC008_POS_CLASS) == ["SC008"]


def test_sc008_accepts_scatter_in_helper_method():
    assert codes(SC008_NEG_CLASS) == []


# -- SC009: spin site without a WaitSpec --------------------------------------

SC009_POS = """
class NoSpecSync(SyncStrategy):
    def barrier(self, ctx, round_idx):
        goal = round_idx + 1
        yield from ctx.atomic_add(self._m, 0, 1)
        yield from ctx.spin_until(
            self._m, lambda: self._m.data[0] >= goal, "go"
        )
"""

SC009_NEG = """
class SpecSync(SyncStrategy):
    def barrier(self, ctx, round_idx):
        goal = round_idx + 1
        yield from ctx.atomic_add(self._m, 0, 1)
        yield from ctx.spin_until(
            self._m, lambda: self._m.data[0] >= goal, "go",
            spec=WaitSpec(goal, lo=0),
        )
"""

SC009_NEG_UNCONVERTIBLE = """
class OpaqueSync(SyncStrategy):
    def barrier(self, ctx, round_idx):
        yield from ctx.atomic_add(self._m, 0, 1)
        yield from ctx.spin_until(
            self._m, lambda: self._check(round_idx), "opaque"
        )
"""


def test_sc009_flags_spin_without_wait_spec():
    assert codes(SC009_POS) == ["SC009"]


def test_sc009_accepts_declared_wait_spec():
    assert codes(SC009_NEG) == []


def test_sc009_skips_predicates_it_cannot_convert():
    # No mechanical threshold shape -> no fix is possible, so no advice.
    assert codes(SC009_NEG_UNCONVERTIBLE) == []


def test_sc009_is_advice_severity():
    report = lint_source(SC009_POS, "<fixture>")
    assert [f.severity for f in report.findings] == ["advice"]
    assert report.findings[0].fixes  # carries the insertion fix
    assert report.exit_code(strict=False) == 0
    assert report.exit_code(strict=True) == 1


# -- shipped code stays clean -------------------------------------------------


def test_every_positive_fixture_reports_exactly_one_code():
    positives = [
        SC001_POS,
        SC002_POS,
        SC003_POS,
        SC004_POS,
        SC005_POS_RESET,
        SC005_POS_GOAL,
        SC006_POS,
        SC007_POS,
        SC008_POS_EFFECT,
        SC008_POS_CLASS,
        SC009_POS,
    ]
    for src in positives:
        found = codes(src)
        assert len(found) == 1, f"fixture reported {found}:\n{src}"
