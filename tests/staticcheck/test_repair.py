"""The repair engine: span patcher, fixed-point driver, properties.

The two properties the tentpole pins down ride on Hypothesis:
re-applying an applied fix is a no-op, and overlapping edits raise the
typed :class:`FixConflictError` instead of corrupting source.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.staticcheck.crossval import SC009_FIXTURE
from repro.staticcheck.engine import lint_source
from repro.staticcheck.repair import (
    Fix,
    FixConflictError,
    FixVerificationError,
    SpanEdit,
    apply_edits,
    apply_fixes,
    fix_paths,
    fix_source,
)

# ---------------------------------------------------------------------------
# SpanEdit / Fix validation
# ---------------------------------------------------------------------------


def test_span_edit_rejects_backwards_span():
    with pytest.raises(ValueError):
        SpanEdit((2, 0), (1, 0), "x", "y")


def test_span_edit_rejects_identity_replacement():
    with pytest.raises(ValueError):
        SpanEdit((1, 0), (1, 1), "x", "x")


def test_fix_requires_edits():
    with pytest.raises(ValueError):
        Fix(code="SC009", description="empty", edits=())


# ---------------------------------------------------------------------------
# The span patcher
# ---------------------------------------------------------------------------


def test_apply_single_replacement():
    src = "alpha\nbeta\ngamma\n"
    edit = SpanEdit((2, 0), (2, 4), "beta", "delta")
    assert apply_edits(src, [edit]) == "alpha\ndelta\ngamma\n"


def test_apply_pure_insertion():
    src = "a\nc\n"
    edit = SpanEdit((2, 0), (2, 0), "", "b\n")
    assert apply_edits(src, [edit]) == "a\nb\nc\n"


def test_apply_insertion_at_eof():
    src = "a\n"
    edit = SpanEdit((2, 0), (2, 0), "", "b\n")
    assert apply_edits(src, [edit]) == "a\nb\n"


def test_apply_deletion_spanning_lines():
    src = "a\nb\nc\nd\n"
    edit = SpanEdit((2, 0), (4, 0), "b\nc\n", "")
    assert apply_edits(src, [edit]) == "a\nd\n"


def test_stale_span_raises_typed_conflict():
    src = "alpha\n"
    edit = SpanEdit((1, 0), (1, 5), "omega", "delta")
    with pytest.raises(FixConflictError, match="stale"):
        apply_edits(src, [edit])


def test_position_past_eof_raises_conflict():
    edit = SpanEdit((9, 0), (9, 1), "x", "y")
    with pytest.raises(FixConflictError):
        apply_edits("a\n", [edit])


def test_overlapping_edits_raise_before_any_patching():
    src = "abcdef\n"
    a = SpanEdit((1, 0), (1, 3), "abc", "X")
    b = SpanEdit((1, 2), (1, 5), "cde", "Y")
    with pytest.raises(FixConflictError, match="overlapping"):
        apply_edits(src, [a, b])


def test_same_point_insertions_conflict():
    src = "ab\n"
    a = SpanEdit((1, 1), (1, 1), "", "X")
    b = SpanEdit((1, 1), (1, 1), "", "Y")
    with pytest.raises(FixConflictError, match="overlapping"):
        apply_edits(src, [a, b])


def test_exact_duplicate_edits_collapse():
    src = "ab\n"
    edit = SpanEdit((1, 1), (1, 1), "", "X")
    assert apply_edits(src, [edit, edit]) == "aXb\n"


def test_apply_fixes_batches_all_edits():
    src = "foo\nbar\n"
    fx = Fix(
        code="SC009",
        description="demo",
        edits=(
            SpanEdit((1, 0), (1, 3), "foo", "FOO"),
            SpanEdit((2, 0), (2, 3), "bar", "BAR"),
        ),
    )
    assert apply_fixes(src, [fx]) == "FOO\nBAR\n"


# ---------------------------------------------------------------------------
# Hypothesis properties
# ---------------------------------------------------------------------------

_TEXT = st.text(alphabet="ab\nc ", min_size=0, max_size=60)
_REPL = st.text(alphabet="xy\nz ", min_size=1, max_size=12)


def _pos(source, offset):
    """(line, col) of an absolute offset, matching SpanEdit convention."""
    line = source.count("\n", 0, offset) + 1
    last_nl = source.rfind("\n", 0, offset)
    return (line, offset - (last_nl + 1))


@settings(max_examples=200)
@given(source=_TEXT, data=st.data())
def test_property_reapplying_an_applied_fix_is_a_noop(source, data):
    """apply(fix); apply(fix) == apply(fix) for replacement-bearing
    edits (pure deletions have no already-applied signature and are
    documented to conflict instead)."""
    i = data.draw(st.integers(0, len(source)), label="start")
    j = data.draw(st.integers(i, len(source)), label="end")
    replacement = data.draw(_REPL, label="replacement")
    original = source[i:j]
    if original == replacement:
        return
    fx = Fix(
        code="SC009",
        description="property",
        edits=(SpanEdit(_pos(source, i), _pos(source, j), original, replacement),),
    )
    once = apply_fixes(source, [fx])
    assert apply_fixes(once, [fx]) == once


@settings(max_examples=200)
@given(source=st.text(alphabet="abc\n", min_size=3, max_size=60), data=st.data())
def test_property_overlapping_spans_raise_typed_conflict(source, data):
    """Two distinct edits over genuinely overlapping spans never patch —
    they raise FixConflictError, leaving the source untouched."""
    i = data.draw(st.integers(0, len(source) - 3), label="start")
    j = data.draw(st.integers(i + 3, len(source)), label="end")
    k = data.draw(st.integers(i + 2, j - 1), label="overlap")
    # first spans [i, k), second spans [i+1, j): i+1 < k, so they overlap.
    first = SpanEdit(_pos(source, i), _pos(source, k), source[i:k], "<A>")
    second = SpanEdit(_pos(source, i + 1), _pos(source, j), source[i + 1 : j], "<B>")
    with pytest.raises(FixConflictError):
        apply_edits(source, [first, second])


# ---------------------------------------------------------------------------
# The fixed-point driver
# ---------------------------------------------------------------------------


def test_fix_source_repairs_sc009_fixture_to_clean():
    result = fix_source(SC009_FIXTURE, "<fixture>")
    assert [a.code for a in result.applied] == ["SC009"]
    assert result.remaining == []
    assert result.changed
    assert "spec=WaitSpec(goal, lo=0)" in result.fixed
    assert "from repro.simcore.effects import WaitSpec" in result.fixed
    assert lint_source(result.fixed).clean


def test_fix_source_is_a_fixed_point():
    once = fix_source(SC009_FIXTURE, "<fixture>")
    again = fix_source(once.fixed, "<fixture>")
    assert not again.changed
    assert again.applied == []
    assert again.iterations == 0


def test_fix_source_within_scopes_the_repair():
    # The fixture's class spans lines 6+; a window above it fixes nothing.
    result = fix_source(SC009_FIXTURE, "<fixture>", within=(1, 3))
    assert not result.changed
    assert result.applied == []


def test_fix_source_clean_input_is_identity():
    clean = "def helper(x):\n    return x + 1\n"
    result = fix_source(clean, "<clean>")
    assert not result.changed
    assert result.fixed == clean
    assert result.iterations == 0


def test_fix_result_diff_and_dict_shape():
    result = fix_source(SC009_FIXTURE, "fixture.py")
    diff = result.diff()
    assert diff.startswith("--- a/fixture.py")
    assert "+from repro.simcore.effects import WaitSpec" in diff
    payload = result.to_dict()
    assert payload["changed"] is True
    assert payload["applied"][0]["code"] == "SC009"
    assert payload["remaining"] == []


def test_fix_verification_error_is_typed():
    # A finding whose "fix" does not remove it must be disproved by the
    # re-lint, not reported as repaired.
    from repro.staticcheck.report import StaticFinding

    finding = StaticFinding(
        code="SC009",
        message="synthetic",
        file="<x>",
        line=1,
        unit="kernel",
        fixes=(
            Fix(
                code="SC009",
                description="does not help",
                edits=(SpanEdit((1, 0), (1, 0), "", "# nop\n"),),
            ),
        ),
    )

    import repro.staticcheck.repair as repair_mod

    real_lint = lint_source
    source = SC009_FIXTURE

    def fake_lint(text, path, **kwargs):
        report = real_lint(text, path, **kwargs)
        report.findings = [finding]
        return report

    original = repair_mod.fix_source.__globals__  # sanity: module intact
    assert "apply_edits" in original
    import repro.staticcheck.engine as engine_mod

    try:
        engine_mod_lint = engine_mod.lint_source
        engine_mod.lint_source = fake_lint
        with pytest.raises(FixVerificationError):
            fix_source(source, "<x>")
    finally:
        engine_mod.lint_source = engine_mod_lint


def test_fix_paths_dry_run_leaves_files_untouched(tmp_path):
    target = tmp_path / "spin.py"
    target.write_text(SC009_FIXTURE)
    results = fix_paths([tmp_path])
    assert len(results) == 1
    assert results[0].changed
    assert target.read_text() == SC009_FIXTURE  # write=False: untouched


def test_fix_paths_write_repairs_in_place(tmp_path):
    target = tmp_path / "spin.py"
    target.write_text(SC009_FIXTURE)
    results = fix_paths([tmp_path], write=True)
    assert results[0].changed
    on_disk = target.read_text()
    assert on_disk == results[0].fixed
    assert lint_source(on_disk).clean
    # Second pass over the repaired tree is a no-op.
    assert not fix_paths([tmp_path], write=True)[0].changed


def test_shipped_tree_is_fix_clean():
    """The dogfooded repo has no pending machine-applicable repairs."""
    results = fix_paths(["src/repro", "examples"])
    assert all(not r.changed for r in results)
