"""Setuptools shim.

This offline environment ships setuptools without the ``wheel`` package,
so PEP 517 editable installs fail with ``invalid command 'bdist_wheel'``.
Keeping a setup.py lets ``pip install -e . --no-build-isolation
--no-use-pep517`` (and plain ``pip install -e .`` on modern toolchains)
work either way.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
